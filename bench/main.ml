(* Experiment harness: regenerates every quantitative claim of the
   paper (DESIGN.md §4 maps claims to experiments).

     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- --only E1    -- one experiment
     dune exec bench/main.exe -- --list       -- list experiments *)

let experiments =
  [ ("E0", "label lookup vs longest-prefix match (Bechamel)",
     E0_forwarding.run);
    ("E1", "overlay N(N-1)/2 circuits vs linear MPLS VPN state",
     E1_scalability.run);
    ("E2", "isolation across VPNs with overlapping address plans",
     E2_isolation.run);
    ("E3", "membership/reachability procedures and IGP convergence",
     E3_procedures.run);
    ("E4", "per-class SLA vs load: best-effort vs DiffServ(+TE)",
     E4_qos.run);
    ("E5", "IPSec: ToS-copy knob and crypto throughput ceiling",
     E5_ipsec.run);
    ("E6", "end-to-end chain: CPE CBQ -> DSCP -> EXP -> PHB",
     E6_end_to_end.run);
    ("E7", "traffic engineering: SPF stacking vs CSPF spreading",
     E7_traffic_engineering.run);
    ("E8", "blind vs resource-aware bandwidth admission",
     E8_admission.run);
    ("E9", "ATM substrate: cell tax, loss amplification, VC admission",
     E9_atm.run);
    ("E10", "one VPN across two carriers (Option-A border)",
     E10_interprovider.run);
    ("E11", "IntServ per-flow state vs DiffServ/MPLS aggregation",
     E11_intserv.run);
    ("E12", "frame relay parity: contract, congestion, overhead",
     E12_frame_relay.run);
    ("E13", "restoration: no repair vs IGP reconvergence vs FRR",
     E13_restoration.run);
    ("E14", "group communication: ingress-replication multicast",
     E14_multicast.run);
    ("E15", "chaos: seeded fault storms, fast reroute on vs off",
     E15_chaos.run);
    ("E16", "partitioned parallel runner: seq vs K=2/4/8 shards",
     E16_parallel.run);
    ("E18", "audited soak: invariant auditor under diurnal chaos",
     E18_soak.run);
    ("E19", "provisioning at scale: C1 measured at 10k VPNs",
     E19_provision.run);
    ("ABL", "ablations: scheduler, WRED, PHP, shared-vs-per-pair LSPs",
     Ablations.run) ]

let list_experiments () =
  List.iter
    (fun (id, desc, _) -> Printf.printf "%-4s %s\n" id desc)
    experiments

let run_one id =
  match
    List.find_opt
      (fun (eid, _, _) -> String.lowercase_ascii eid = String.lowercase_ascii id)
      experiments
  with
  | Some (_, _, run) -> run ()
  | None ->
    Printf.eprintf "unknown experiment %S; try --list\n" id;
    exit 1

(* Counters accumulated across the experiments just run (sections that
   bracket the registry with snapshot/restore, like E4c/E6b, are
   transparent to the accumulation). *)
let emit_telemetry () =
  let path = "BENCH_telemetry.json" in
  let oc = open_out path in
  output_string oc (Mvpn_telemetry.Registry.to_json ());
  output_char oc '\n';
  close_out oc;
  Printf.printf "\ntelemetry: %d metrics written to %s\n"
    (Mvpn_telemetry.Registry.cardinal ())
    path

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | ["--list"] -> list_experiments ()
  | ["--only"; id] ->
    Mvpn_telemetry.Control.enable ();
    run_one id;
    emit_telemetry ()
  | [] ->
    Printf.printf
      "MPLS VPN end-to-end QoS: experiment harness (see DESIGN.md)\n";
    Mvpn_telemetry.Control.enable ();
    List.iter (fun (_, _, run) -> run ()) experiments;
    emit_telemetry ()
  | _ ->
    Printf.eprintf
      "usage: main.exe [--list | --only <id>]\n";
    exit 1
