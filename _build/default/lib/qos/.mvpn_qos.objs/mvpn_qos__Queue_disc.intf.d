lib/qos/queue_disc.mli: Mvpn_net Mvpn_sim
