(** Deterministic chaos engine: scripted and seeded fault timelines.

    A {!plan} is data — a list of typed faults with absolute injection
    times — so the same plan replays byte-identically on the discrete
    event engine: benches, the [mvpn chaos] command and the property
    tests all drive the same machinery. {!random_plan} draws a plan
    from an explicit {!Mvpn_sim.Rng.t} (Pareto-held faults: mostly
    blips, a heavy tail of real outages); {!schedule} arms it on a
    network. Every injection emits a typed [Fault_injected] event and
    counts [resilience.chaos.faults].

    Fault semantics:
    - [Link_flap]: duplex link down at [at], back up at [at +. hold];
    - [Node_down]: every link of [node] down for [hold] — the node
      itself keeps its state (control-plane state survives reboots
      here; the links are the blast radius);
    - [Loss_burst] / [Corrupt_burst]: arm a stateless per-packet fault
      on the a→b {!Mvpn_qos.Port} (hash-of-uid verdicts, so which
      packets die is independent of traffic interleaving), cleared
      after [duration];
    - [Session_drop]: wipe the node's FTN bindings
      ({!Mvpn_mpls.Plane.clear_ftn}) — an LDP/BGP session loss at an
      ingress; traffic degrades to IP fallback (or drops, accounted)
      until a control-plane refresh re-installs the bindings. *)

type fault =
  | Link_flap of { a : int; b : int; at : float; hold : float }
  | Node_down of { node : int; at : float; hold : float }
  | Loss_burst of {
      a : int;
      b : int;
      at : float;
      duration : float;
      loss : float;
    }
  | Corrupt_burst of {
      a : int;
      b : int;
      at : float;
      duration : float;
      corrupt : float;
    }
  | Session_drop of { node : int; at : float }

type plan = fault list

val random_plan :
  ?events:int ->
  ?nodes:int list ->
  rng:Mvpn_sim.Rng.t ->
  links:(int * int) list ->
  duration:float ->
  unit ->
  plan
(** Draw [events] (default 12) faults over [0, duration), targeting
    the given duplex links; node faults (session drops, node outages)
    only appear when [nodes] is non-empty. Sorted by injection time;
    equal seeds give equal plans.
    @raise Invalid_argument when [links] is empty. *)

val random_topology_plan :
  ?events:int ->
  nodes:int list ->
  rng:Mvpn_sim.Rng.t ->
  links:(int * int) list ->
  duration:float ->
  unit ->
  plan
(** Like {!random_plan} but drawing only topology faults — link flaps,
    session drops, node outages — never per-packet loss/corrupt bursts.
    Those key their verdicts on packet uids, whose allocation order is
    nondeterministic across domains, so topology-only plans are the
    storms a sharded soak can replay byte-identically at every shard
    count.
    @raise Invalid_argument when [links] or [nodes] is empty. *)

val schedule : Mvpn_core.Network.t -> plan -> unit
(** Arm every fault (and its recovery) on the network's engine. *)

val fault_time : fault -> float

val pp_fault : Format.formatter -> fault -> unit

val fault_json : fault -> string
(** One JSON object per fault, stable field order, floats rendered
    losslessly (shortest round-tripping decimal) — the replayable
    scenario record [mvpn chaos --json] prints. *)

val plan_json : plan -> string
(** The whole plan as a JSON array of {!fault_json} objects. *)

val plan_of_json : string -> plan
(** Parse exactly the shape {!plan_json} emits, structurally inverse:
    [plan_of_json (plan_json p) = p], so a plan exported by one run can
    be replayed byte-identically by another.
    @raise Failure on malformed input. *)
