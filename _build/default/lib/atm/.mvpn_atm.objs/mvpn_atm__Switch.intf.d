lib/atm/switch.mli: Cell
