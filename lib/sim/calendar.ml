(* Calendar queue (Brown 1988): an array of [nbuckets] FIFO-sorted time
   buckets of width [w]. An event with key [k] lives in virtual bucket
   [vb = floor (k / w)], physical bucket [vb land mask]; one "year" is
   [nbuckets * w] of key space. The dequeue cursor [cur_vb] walks
   virtual buckets: a bucket's head is popped when it falls inside the
   cursor's window ([key < (cur_vb + 1) * w]), otherwise the cursor
   advances. A full fruitless year falls back to a direct scan of all
   bucket heads (the queue is sparse relative to the width), which also
   re-seats the cursor.

   Buckets are kept sorted by [(key, seq)] with [seq] a global push
   counter, so equal-key events pop in insertion order — the same FIFO
   tie-break {!Heap} implements, making the two structures
   order-identical and the engine's fingerprints byte-identical under
   either. Pushing a key behind the cursor re-seats the cursor (the
   engine never does this, but the structure stays a correct general
   priority queue for the property tests).

   Sizing: the bucket count doubles above 2 buckets/event and halves
   below 1/2, and on every rebuild the width is re-derived from the
   live key span (~3 expected events per bucket). Between rebuilds a
   running estimate of the mean pop gap triggers a re-width when the
   observed event density drifts >8x from what the width was built
   for — the "density shift" rule that keeps both skewed bursts and
   long-idle phases O(1). *)

type 'a cell =
  | Nil
  | Cell of { key : float; seq : int; value : 'a; mutable next : 'a cell }

type 'a t = {
  mutable buckets : 'a cell array;
  mutable mask : int;  (* Array.length buckets - 1; power of two *)
  mutable w : float;  (* bucket width, > 0 *)
  mutable cur_vb : int;  (* cursor: virtual bucket to scan next *)
  mutable size : int;
  mutable next_seq : int;
  (* Density tracking between rebuilds: mean gap between successive
     pops, compared against the gap the current width was sized for. *)
  mutable last_pop_key : float;
  mutable gap_sum : float;
  mutable gap_n : int;
  (* Most recent measured mean pop gap; 0.0 until the first
     measurement. Preferred over the live key span when deriving the
     width: a handful of far-future timers can stretch the span by
     orders of magnitude (the classic calendar-queue skew pathology),
     while the pop gap tracks where the dequeue action actually is. *)
  mutable gap_hint : float;
}

let min_buckets = 32
let max_buckets = 1 lsl 20

(* Re-examine width after this many pops (power of two, cheap mask). *)
let rewidth_period = 8192

let create () =
  { buckets = Array.make min_buckets Nil; mask = min_buckets - 1; w = 1.0;
    cur_vb = 0; size = 0; next_seq = 0;
    last_pop_key = neg_infinity; gap_sum = 0.0; gap_n = 0; gap_hint = 0.0 }

let size q = q.size

let is_empty q = q.size = 0

(* Virtual bucket of [key]: floor (key / w), clamped so the float →
   int conversion is always defined. The clamp only engages for keys
   astronomically far from the cursor, where the bucket index is
   meaningless anyway (such events are found by the direct scan). *)
let vb_of w key =
  let p = key /. w in
  if p >= 4.0e18 then max_int / 2
  else if p <= -4.0e18 then min_int / 2
  else int_of_float (Float.floor p)

(* Insert sorted by (key, seq). [seq] grows monotonically, so walking
   while [strictly less than the new cell] appends equal keys in
   insertion order. Top-level recursion (not an inner closure) so a
   push performs exactly one allocation: the new cell. *)
let rec ins_walk prev key seq value =
  match prev with
  | Nil -> assert false
  | Cell p ->
    (match p.next with
     | Cell n when n.key < key || (n.key = key && n.seq < seq) ->
       ins_walk p.next key seq value
     | next -> p.next <- Cell { key; seq; value; next })

let insert_sorted q idx key seq value =
  match q.buckets.(idx) with
  | Cell h when h.key < key || (h.key = key && h.seq < seq) ->
    ins_walk q.buckets.(idx) key seq value
  | head -> q.buckets.(idx) <- Cell { key; seq; value; next = head }

(* Rebuild with [nbuckets] buckets, width derived from the live key
   span (targeting ~3 events per bucket so dequeue scans stay short).
   O(size); called on threshold crossings and density drift, both
   amortized. *)
let rebuild q nbuckets =
  let old = q.buckets in
  let n = max min_buckets (min max_buckets nbuckets) in
  (* Live key span for the new width. *)
  let kmin = ref infinity and kmax = ref neg_infinity in
  Array.iter
    (fun head ->
       let rec go = function
         | Nil -> ()
         | Cell c ->
           if c.key < !kmin then kmin := c.key;
           if c.key > !kmax then kmax := c.key;
           go c.next
       in
       go head)
    old;
  let span = !kmax -. !kmin in
  let w =
    if q.size = 0 then q.w
    else begin
      (* ~3 expected events per bucket: from the measured pop gap when
         one exists, else from the live span (start-up, before any
         pops). Span can be wildly skewed by far-future outliers; the
         gap cannot. *)
      let ideal =
        if q.gap_hint > 0.0 then 3.0 *. q.gap_hint
        else if span > 0.0 then 3.0 *. span /. float_of_int q.size
        else q.w
      in
      (* Keep floor (key / w) far inside int range. *)
      let lo = Float.max 1e-300 (Float.abs !kmax *. 1e-15) in
      Float.max ideal lo
    end
  in
  q.buckets <- Array.make n Nil;
  q.mask <- n - 1;
  q.w <- w;
  Array.iter
    (fun head ->
       let rec go = function
         | Nil -> ()
         | Cell c ->
           let next = c.next in
           insert_sorted q (vb_of w c.key land q.mask) c.key c.seq c.value;
           go next
       in
       go head)
    old;
  (* Re-seat the cursor at the earliest live bucket. *)
  if q.size > 0 then q.cur_vb <- vb_of w !kmin;
  q.gap_sum <- 0.0;
  q.gap_n <- 0

let push q key value =
  if not (Float.is_finite key) then invalid_arg "Calendar.push: key not finite";
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  let vb = vb_of q.w key in
  if q.size = 0 || vb < q.cur_vb then q.cur_vb <- vb;
  insert_sorted q (vb land q.mask) key seq value;
  q.size <- q.size + 1;
  if q.size > 2 * (q.mask + 1) && q.mask + 1 < max_buckets then
    rebuild q (2 * (q.mask + 1))

(* Fallback when a whole year's scan found nothing due: the population
   is sparse relative to the width, so take the global minimum across
   all bucket heads (each head is its bucket's minimum) and re-seat the
   cursor there. Cold path; runs at most once per pop. *)
let direct_min q =
  let best = ref Nil in
  Array.iter
    (fun head ->
       match head, !best with
       | Nil, _ -> ()
       | Cell c, Cell b ->
         if c.key < b.key || (c.key = b.key && c.seq < b.seq) then
           best := head
       | Cell _, Nil -> best := head)
    q.buckets;
  (match !best with
   | Cell b -> q.cur_vb <- vb_of q.w b.key
   | Nil -> assert false);
  !best

(* Advance the cursor to the virtual bucket holding the global minimum,
   returning that minimum cell (still linked, never copied — the
   returned value is the bucket head itself). O(1) expected: the cursor
   only moves over buckets with no due event, and each position is
   visited once per year. *)
let rec scan_min q vb remaining =
  if remaining = 0 then direct_min q
  else
    match q.buckets.(vb land q.mask) with
    | Cell c when c.key < float_of_int (vb + 1) *. q.w ->
      q.cur_vb <- vb;
      q.buckets.(vb land q.mask)
    | _ -> scan_min q (vb + 1) (remaining - 1)

let find_min q =
  if q.size = 0 then Nil else scan_min q q.cur_vb (q.mask + 1)

let peek q =
  match find_min q with
  | Nil -> None
  | Cell c -> Some (c.key, c.value)

let pop q =
  match find_min q with
  | Nil -> None
  | Cell c ->
    (* find_min re-seated the cursor, so the minimum is the head of the
       cursor's physical bucket. *)
    let idx = q.cur_vb land q.mask in
    (match q.buckets.(idx) with
     | Cell h -> q.buckets.(idx) <- h.next
     | Nil -> assert false);
    q.size <- q.size - 1;
    (* Density drift check: compare the mean inter-pop gap against the
       ~w/3 gap the current width was derived for; rebuild on >8x
       drift in either direction. *)
    if q.last_pop_key > neg_infinity then begin
      q.gap_sum <- q.gap_sum +. (c.key -. q.last_pop_key);
      q.gap_n <- q.gap_n + 1;
      if q.gap_n land (rewidth_period - 1) = 0 && q.gap_sum > 0.0 then begin
        let mean_gap = q.gap_sum /. float_of_int q.gap_n in
        q.gap_hint <- mean_gap;
        let built_for = q.w /. 3.0 in
        if mean_gap > 8.0 *. built_for || mean_gap < built_for /. 8.0 then
          rebuild q (q.mask + 1)
        else begin
          q.gap_sum <- 0.0;
          q.gap_n <- 0
        end
      end
    end;
    q.last_pop_key <- c.key;
    if q.size < (q.mask + 1) / 2 && q.mask + 1 > min_buckets then
      rebuild q ((q.mask + 1) / 2);
    Some (c.key, c.value)

let clear q =
  q.buckets <- Array.make min_buckets Nil;
  q.mask <- min_buckets - 1;
  q.w <- 1.0;
  q.cur_vb <- 0;
  q.size <- 0;
  q.next_seq <- 0;
  q.last_pop_key <- neg_infinity;
  q.gap_sum <- 0.0;
  q.gap_n <- 0

let bucket_count q = q.mask + 1

let width q = q.w
