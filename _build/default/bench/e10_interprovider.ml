(* E10 — VPNs across cooperative provider boundaries (§5).

   "This cross-network SLA capability allows the building of VPNs using
   multiple carriers as necessary, an option not available with most
   frame relay offerings."

   Two carriers, one VPN spanning both via an Option-A border. Measures
   end-to-end delivery, the DiffServ SLA across the boundary, and the
   control-plane cost of the stitch. *)

open Mvpn_core
module Engine = Mvpn_sim.Engine
module Prefix = Mvpn_net.Prefix
module Ipv4 = Mvpn_net.Ipv4
module Flow = Mvpn_net.Flow
module Dscp = Mvpn_net.Dscp
module Sla = Mvpn_qos.Sla

let run_case ~policy =
  let ip2, engine, sites_a, sites_b =
    Interprovider.deploy_vpn ~pops_per_provider:6 ~policy ~vpn:1
      ~sites_a:[(1, Prefix.make (Ipv4.of_octets 10 0 0 0) 16);
                (3, Prefix.make (Ipv4.of_octets 10 1 0 0) 16)]
      ~sites_b:[(2, Prefix.make (Ipv4.of_octets 10 2 0 0) 16);
                (4, Prefix.make (Ipv4.of_octets 10 3 0 0) 16)]
      ()
  in
  let net = Interprovider.network ip2 in
  let registry = Traffic.registry engine in
  List.iter
    (fun (s : Site.t) ->
       Network.set_sink net s.Site.ce_node (Traffic.sink registry))
    (sites_a @ sites_b);
  let a = List.hd sites_a and b = List.hd sites_b in
  let mk label dscp port rate size =
    let emit =
      Traffic.sender registry ~net ~src_node:a.Site.ce_node
        ~flow:(Flow.make ~proto:Flow.Udp ~dst_port:port (Site.host a 1)
                 (Site.host b 1))
        ~dscp ~vpn:1
        ~collector:(Traffic.collector registry label)
        ()
    in
    Traffic.cbr engine ~start:0.0 ~stop:20.0 ~rate_bps:rate
      ~packet_bytes:size emit
  in
  mk "voice" Dscp.ef 5060 64_000.0 200;
  mk "bulk" Dscp.best_effort 20 2_200_000.0 1500;
  Engine.run engine;
  ( Traffic.report registry "voice",
    Traffic.report registry "bulk",
    Interprovider.ebgp_messages ip2,
    Network.drops net )

let run () =
  Tables.heading
    "E10: one VPN across two carriers (Option-A border, 2 Mb/s access congested)";
  let widths = [14; 11; 11; 9; 10; 11; 8] in
  Tables.row widths
    [ "policy"; "voice mean"; "voice p99"; "v loss"; "bulk loss";
      "ebgp msgs"; "drops" ];
  Tables.rule widths;
  List.iter
    (fun (name, policy) ->
       let voice, bulk, ebgp, drops = run_case ~policy in
       Tables.row widths
         [ name;
           Tables.ms voice.Sla.mean_delay;
           Tables.ms voice.Sla.p99_delay;
           Tables.pct voice.Sla.loss;
           Tables.pct bulk.Sla.loss;
           string_of_int ebgp;
           string_of_int drops ])
    [ ("best-effort", Qos_mapping.Best_effort);
      ("diffserv", Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched) ];
  Tables.note
    "\nExpected shape: the VPN spans both carriers (zero forwarding\n\
     drops), the stitch costs a handful of per-VRF eBGP UPDATEs, and —\n\
     the §5 claim — the DiffServ marking crosses the boundary in the IP\n\
     header, so the voice SLA holds end-to-end across two networks\n\
     under the same congestion that breaks it on best effort."
