lib/mpls/lfib.mli: Mvpn_net
