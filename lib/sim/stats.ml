module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add s x =
    s.count <- s.count + 1;
    let delta = x -. s.mean in
    s.mean <- s.mean +. (delta /. float_of_int s.count);
    s.m2 <- s.m2 +. (delta *. (x -. s.mean));
    if x < s.min then s.min <- x;
    if x > s.max then s.max <- x

  let count s = s.count

  let mean s = if s.count = 0 then 0.0 else s.mean

  (* Unbiased (n-1) sample variance — the estimator [merge]'s parallel
     m2 combination preserves, so a merged summary and a single-stream
     summary of the same data report the same value. *)
  let variance s =
    if s.count < 2 then 0.0 else s.m2 /. float_of_int (s.count - 1)

  let stddev s = sqrt (variance s)

  (* Empty summaries report 0.0, like [mean] — the +/-infinity sentinels
     used internally must not leak into reports or bench JSON, where a
     non-finite value is unrepresentable. *)
  let min s = if s.count = 0 then 0.0 else s.min

  let max s = if s.count = 0 then 0.0 else s.max

  let merge a b =
    if a.count = 0 then { b with count = b.count }
    else if b.count = 0 then { a with count = a.count }
    else begin
      let n = a.count + b.count in
      let delta = b.mean -. a.mean in
      let mean =
        a.mean +. (delta *. float_of_int b.count /. float_of_int n)
      in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.count *. float_of_int b.count
            /. float_of_int n)
      in
      { count = n; mean; m2; min = Float.min a.min b.min;
        max = Float.max a.max b.max }
    end

  let pp ppf s =
    Format.fprintf ppf "n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g" s.count
      (mean s) (stddev s) (min s) (max s)
end

module Samples = struct
  type t = {
    mutable data : float array;
    mutable size : int;
    mutable sorted : bool;
  }

  let create () = { data = [||]; size = 0; sorted = true }

  let add s x =
    let cap = Array.length s.data in
    if s.size = cap then begin
      let ndata = Array.make (Stdlib.max 64 (2 * cap)) 0.0 in
      Array.blit s.data 0 ndata 0 s.size;
      s.data <- ndata
    end;
    s.data.(s.size) <- x;
    s.size <- s.size + 1;
    s.sorted <- false

  let count s = s.size

  let ensure_sorted s =
    if not s.sorted then begin
      let live = Array.sub s.data 0 s.size in
      Array.sort Float.compare live;
      Array.blit live 0 s.data 0 s.size;
      s.sorted <- true
    end

  let percentile s q =
    if q < 0.0 || q > 1.0 then
      invalid_arg "Samples.percentile: fraction outside [0, 1]";
    if s.size = 0 then 0.0
    else begin
      ensure_sorted s;
      let pos = q *. float_of_int (s.size - 1) in
      let lo = int_of_float (Float.floor pos) in
      let hi = Stdlib.min (lo + 1) (s.size - 1) in
      let frac = pos -. float_of_int lo in
      (s.data.(lo) *. (1.0 -. frac)) +. (s.data.(hi) *. frac)
    end

  let median s = percentile s 0.5

  let mean s =
    if s.size = 0 then 0.0
    else begin
      let sum = ref 0.0 in
      for i = 0 to s.size - 1 do
        sum := !sum +. s.data.(i)
      done;
      !sum /. float_of_int s.size
    end

  let to_array s =
    ensure_sorted s;
    Array.sub s.data 0 s.size
end

module Hist = struct
  type t = { edges : float array; counts : int array }

  let create edges =
    let n = Array.length edges in
    for i = 1 to n - 1 do
      if edges.(i) <= edges.(i - 1) then
        invalid_arg "Hist.create: edges must be strictly increasing"
    done;
    { edges; counts = Array.make (n + 1) 0 }

  let bucket t x =
    (* First bucket whose upper edge is >= x; the overflow bucket
       otherwise. *)
    let n = Array.length t.edges in
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if x <= t.edges.(mid) then go lo mid else go (mid + 1) hi
    in
    go 0 n

  let add t x =
    let b = bucket t x in
    t.counts.(b) <- t.counts.(b) + 1

  let counts t = Array.copy t.counts

  let total t = Array.fold_left ( + ) 0 t.counts

  let pp ppf t =
    let n = Array.length t.edges in
    for i = 0 to n do
      let label =
        if i = 0 then Printf.sprintf "<=%.4g" t.edges.(0)
        else if i = n then Printf.sprintf ">%.4g" t.edges.(n - 1)
        else Printf.sprintf "(%.4g,%.4g]" t.edges.(i - 1) t.edges.(i)
      in
      Format.fprintf ppf "%s: %d@." label t.counts.(i)
    done
end

module Timeseries = struct
  type t = { mutable points : (float * float) list; mutable length : int }
  (* Reverse chronological; rendered oldest-first on demand. *)

  let create () = { points = []; length = 0 }

  let add ts time v =
    (match ts.points with
     | (last, _) :: _ when time < last ->
       invalid_arg "Timeseries.add: time going backwards"
     | _ -> ());
    ts.points <- (time, v) :: ts.points;
    ts.length <- ts.length + 1

  let length ts = ts.length

  let to_list ts = List.rev ts.points

  let last ts = match ts.points with [] -> None | p :: _ -> Some p

  let mean_value ts =
    if ts.length = 0 then 0.0
    else
      List.fold_left (fun acc (_, v) -> acc +. v) 0.0 ts.points
      /. float_of_int ts.length

  let max_value ts =
    List.fold_left (fun acc (_, v) -> Float.max acc v) neg_infinity ts.points
end
