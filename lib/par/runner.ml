module Engine = Mvpn_sim.Engine
module Topology = Mvpn_sim.Topology
module Packet = Mvpn_net.Packet
module Registry = Mvpn_telemetry.Registry
module Control = Mvpn_telemetry.Control
module Slo = Mvpn_telemetry.Slo
module Event_log = Mvpn_telemetry.Event_log
module Scenario = Mvpn_core.Scenario
module Network = Mvpn_core.Network
module Site = Mvpn_core.Site
module Qos_mapping = Mvpn_core.Qos_mapping
module Sampler = Mvpn_core.Sampler
module Sla = Mvpn_qos.Sla

type config = {
  shards : int;
  pops : int;
  vpns : int;
  sites_per_vpn : int;
  policy : Qos_mapping.policy;
  use_te : bool;
  load : float;
  duration : float;
  seed : int;
  core_delay : float option;
  backend : Engine.backend;
  sample_interval : float option;
  profile : bool;
  prepare_replica : (Scenario.t -> unit) option;
  diurnal : int option;
}

let default_config =
  { shards = 4; pops = 12; vpns = 2; sites_per_vpn = 4;
    policy = Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched;
    use_te = false; load = 0.9; duration = 30.0; seed = 11;
    core_delay = None; backend = Engine.Calendar;
    sample_interval = None; profile = false; prepare_replica = None;
    diurnal = None }

type outcome = {
  shards : int;
  sizes : int array;
  cut_links : int;
  lookahead : bool;
  delivered : int;
  dropped : int;
  events : int;
  scheduled : int;
  exchanged : int;
  leftover : int;
  overflow : int;
  classes : (string * int * int) list;
  slo : Slo.t;
  registry_json : string;
  horizon : float;
}

let horizon_of cfg = cfg.duration +. 5.0

let build_replica cfg () =
  Scenario.build ~backend:cfg.backend ~pops:cfg.pops ~vpns:cfg.vpns
    ~sites_per_vpn:cfg.sites_per_vpn ~seed:cfg.seed
    ?core_delay:cfg.core_delay
    (Scenario.Mpls_deployment { policy = cfg.policy; use_te = cfg.use_te })

let arm_workload cfg sc ~only =
  match cfg.diurnal with
  | None ->
    Scenario.add_mixed_workload ~load:cfg.load ~only sc
      ~pairs:(Scenario.default_pairs sc) ~duration:cfg.duration
  | Some segments ->
    Scenario.add_diurnal_workload ~peak_load:cfg.load ~segments ~only sc
      ~pairs:(Scenario.default_pairs sc) ~duration:cfg.duration

(* Replay a time-sorted fate stream into a fresh conformance engine
   with the stock per-(vpn, band) objectives — the same declarations
   [Scenario.attach_slo] makes. The stream arrives as an iteration
   function so the two producers keep their natural storage: the
   parallel runner a merged list of [Shard.fate] records, the
   sequential runner a struct-of-arrays log (below) that never built
   records in the first place. A private event log keeps violation
   events out of the global forensic ring (the registry JSON was
   captured already; see below). *)
let replay_slo ~scenario ~horizon iter_fates =
  let log = Event_log.create () in
  let slo = Slo.create ~events:log () in
  let vpns =
    Array.fold_left
      (fun acc (s : Site.t) ->
         if List.mem s.Site.vpn acc then acc else s.Site.vpn :: acc)
      [ 0 ] (Scenario.sites scenario)
    |> List.sort_uniq Int.compare
  in
  List.iter
    (fun vpn ->
       for band = 0 to Qos_mapping.band_count - 1 do
         Slo.declare slo ~vpn ~band (Qos_mapping.default_objective band)
       done)
    vpns;
  Control.with_enabled (fun () ->
      iter_fates (fun ~time ~vpn ~band ~dropped ~latency ->
          if dropped then Slo.observe_drop slo ~vpn ~band ~time
          else Slo.observe_delivery slo ~vpn ~band ~time ~latency);
      Slo.advance slo ~time:horizon);
  slo

(* Struct-of-arrays fate log for the sequential runner: the fate hook
   fires in event-time order, so no sort is needed before replay, and
   recording a fate is two unboxed float stores plus one packed int —
   no record, no cons. Meta packing: bit 0 dropped, bits 1-21 band,
   bits 22+ vpn. *)
type fatelog = {
  mutable fl_times : floatarray;
  mutable fl_lats : floatarray;  (* latency; 0.0 for drops *)
  mutable fl_meta : int array;
  mutable fl_n : int;
}

let fatelog_create () =
  { fl_times = Float.Array.create 1024; fl_lats = Float.Array.create 1024;
    fl_meta = Array.make 1024 0; fl_n = 0 }

let fatelog_add fl ~time ~vpn ~band ~dropped ~latency =
  let n = fl.fl_n in
  if n = Array.length fl.fl_meta then begin
    let cap = 2 * n in
    let t = Float.Array.create cap and l = Float.Array.create cap in
    Float.Array.blit fl.fl_times 0 t 0 n;
    Float.Array.blit fl.fl_lats 0 l 0 n;
    let m = Array.make cap 0 in
    Array.blit fl.fl_meta 0 m 0 n;
    fl.fl_times <- t;
    fl.fl_lats <- l;
    fl.fl_meta <- m
  end;
  Float.Array.set fl.fl_times n time;
  Float.Array.set fl.fl_lats n latency;
  fl.fl_meta.(n) <- (vpn lsl 22) lor (band lsl 1) lor Bool.to_int dropped;
  fl.fl_n <- n + 1

let fatelog_iter fl f =
  for i = 0 to fl.fl_n - 1 do
    let meta = fl.fl_meta.(i) in
    f ~time:(Float.Array.get fl.fl_times i) ~vpn:(meta lsr 22)
      ~band:((meta lsr 1) land 0x1FFFFF) ~dropped:(meta land 1 = 1)
      ~latency:(Float.Array.get fl.fl_lats i)
  done

let class_sums per_replica_reports =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (List.iter (fun (label, (r : Sla.report)) ->
         let s0, v0 =
           match Hashtbl.find_opt tbl label with
           | Some x -> x
           | None ->
             order := label :: !order;
             (0, 0)
         in
         Hashtbl.replace tbl label (s0 + r.Sla.sent, v0 + r.Sla.received)))
    per_replica_reports;
  List.rev_map (fun l -> let s, v = Hashtbl.find tbl l in (l, s, v)) !order

(* One shard's life: conservative windows (or epoch barriers when some
   cut link has zero lookahead), then the final inclusive pass at the
   horizon, then a last channel flush so post-horizon messages are
   accounted as leftovers rather than stranded. *)
let drive sh clock =
  let id = Shard.id sh in
  let horizon = Clock.horizon clock in
  if Clock.lookahead clock then begin
    let rec loop completed =
      if completed < horizon then begin
        let b = Clock.next_bound clock ~shard:id ~completed in
        Shard.ingest sh ~bound:b ~inclusive:false;
        Shard.run_before sh ~before:b;
        Clock.publish clock ~shard:id b;
        loop b
      end
    in
    loop 0.0
  end
  else begin
    let rec rounds () =
      Clock.barrier clock;
      Shard.ingest sh ~bound:horizon ~inclusive:true;
      let nxt = Option.value ~default:infinity (Shard.peek sh) in
      let m = Clock.min_next clock ~shard:id nxt in
      if m <= horizon then begin
        Shard.run_to sh ~until:m;
        rounds ()
      end
    in
    rounds ()
  end;
  Clock.barrier clock;
  Shard.ingest sh ~bound:horizon ~inclusive:true;
  Shard.run_to sh ~until:horizon;
  Clock.barrier clock;
  (* Everyone has finished the horizon pass: drain what those last
     events sent (all of it arrives strictly past the horizon). *)
  Shard.ingest sh ~bound:neg_infinity ~inclusive:false

let run_parallel (cfg : config) =
  if cfg.shards < 1 then invalid_arg "Runner.run_parallel: shards < 1";
  (* Long soaks recycle packet storage. Flag set before the shard
     domains spawn (each recycles through its own domain-local pool);
     delivered/dropped packets are not retained by any runner hook. *)
  let prev_pooling = Packet.pooling () in
  Packet.set_pooling true;
  Fun.protect ~finally:(fun () -> Packet.set_pooling prev_pooling)
  @@ fun () ->
  let horizon = horizon_of cfg in
  (* Throwaway build, telemetry off, just to cut the topology — every
     replica builds the same one, so the partition is exact. *)
  let part =
    Control.with_disabled (fun () ->
        let sc = build_replica cfg () in
        Partition.compute
          ~hint:(Scenario.region_hint sc)
          (Network.topology (Scenario.network sc))
          ~shards:cfg.shards)
  in
  let k = part.Partition.shards in
  let ex = Exchange.create ~shards:k () in
  let inbound = Array.make k [] in
  List.iter
    (fun (l : Topology.link) ->
       let s = part.Partition.owner.(l.Topology.src)
       and d = part.Partition.owner.(l.Topology.dst) in
       Exchange.open_channel ex ~src:s ~dst:d;
       inbound.(d) <-
         (match List.assoc_opt s inbound.(d) with
          | Some d0 ->
            (s, Float.min d0 l.Topology.delay)
            :: List.remove_assoc s inbound.(d)
          | None -> (s, l.Topology.delay) :: inbound.(d)))
    part.Partition.cut;
  let clock = Clock.create ~shards:k ~horizon ~inbound in
  let domains =
    Array.init k (fun i ->
        Domain.spawn (fun () ->
            let sh =
              Shard.create ~id:i ~part ~exchange:ex
                ~build:(build_replica cfg)
                ~prepare:(fun sc ->
                    let tap =
                      Option.map
                        (fun dt ->
                           Sampler.observe_fate
                             (Sampler.start ~interval:dt ~until:horizon sc))
                        cfg.sample_interval
                    in
                    (* Same schedule-call order as run_sequential:
                       sampler ticks, then whatever the caller arms
                       (chaos storms, the invariant auditor) — FIFO
                       tie-break at equal times depends on it. *)
                    (match cfg.prepare_replica with
                     | Some f -> f sc
                     | None -> ());
                    tap)
                ~arm:(arm_workload cfg) ()
            in
            drive sh clock;
            Shard.collect sh))
  in
  let cols = Array.map Domain.join domains in
  (* Merge every shard's metric cells into this domain, in shard order
     (associative, so the order only pins float rounding). *)
  Array.iter (fun c -> Registry.absorb c.Shard.r_snapshot) cols;
  (* Post-horizon cross-shard packets: the sequential run scheduled
     their propagation events (and never executed them); re-schedule
     them on the destination replica so [sim.scheduled] agrees. *)
  let leftover = ref 0 in
  Array.iter
    (fun c ->
       let eng = Scenario.engine c.Shard.r_scenario in
       let net = Scenario.network c.Shard.r_scenario in
       List.iter
         (fun (m : Exchange.msg) ->
            incr leftover;
            let dst = m.Exchange.dst_node and src = m.Exchange.src_node in
            let packet = m.Exchange.packet in
            Engine.schedule_at eng ~time:m.Exchange.arrival (fun () ->
                Network.receive net dst ~from:(Some src) packet))
         c.Shard.r_leftover)
    cols;
  let registry_json = Registry.to_json ~trace_events:0 () in
  let counter_sum name =
    Array.fold_left
      (fun acc c -> acc + Registry.snapshot_counter c.Shard.r_snapshot name)
      0 cols
  in
  let fates =
    Array.to_list cols
    |> List.concat_map (fun c ->
           List.map (fun f -> (c.Shard.r_id, f)) c.Shard.r_fates)
    |> List.sort (fun (sa, (fa : Shard.fate)) (sb, fb) ->
           match Float.compare fa.Shard.f_time fb.Shard.f_time with
           | 0 ->
             (match Int.compare sa sb with
              | 0 -> Int.compare fa.Shard.f_seq fb.Shard.f_seq
              | c -> c)
           | c -> c)
    |> List.map snd
  in
  let slo =
    replay_slo ~scenario:cols.(0).Shard.r_scenario ~horizon (fun f ->
        List.iter
          (fun (x : Shard.fate) ->
             f ~time:x.Shard.f_time ~vpn:x.Shard.f_vpn ~band:x.Shard.f_band
               ~dropped:x.Shard.f_dropped ~latency:x.Shard.f_latency)
          fates)
  in
  { shards = k;
    sizes = Partition.sizes part;
    cut_links = List.length part.Partition.cut;
    lookahead = Clock.lookahead clock;
    delivered = counter_sum "net.delivered";
    dropped = counter_sum "net.drops";
    events = counter_sum "sim.events";
    scheduled = counter_sum "sim.scheduled" + !leftover;
    exchanged =
      Array.fold_left (fun acc c -> acc + c.Shard.r_sent) 0 cols;
    leftover = !leftover;
    overflow = Exchange.overflows ex;
    classes =
      class_sums
        (Array.to_list cols
         |> List.map (fun c -> Scenario.class_reports c.Shard.r_scenario));
    slo; registry_json; horizon }

let run_sequential (cfg : config) =
  let prev_pooling = Packet.pooling () in
  Packet.set_pooling true;
  Fun.protect ~finally:(fun () -> Packet.set_pooling prev_pooling)
  @@ fun () ->
  let horizon = horizon_of cfg in
  let base = Registry.snapshot () in
  let sc = build_replica cfg () in
  let net = Scenario.network sc in
  let sampler =
    Option.map
      (fun dt -> Sampler.start ~interval:dt ~until:horizon sc)
      cfg.sample_interval
  in
  (* After the sampler, before the workload — the same schedule-call
     order the shard replicas use, so events landing at equal times
     keep the same FIFO rank at every shard count. *)
  (match cfg.prepare_replica with Some f -> f sc | None -> ());
  if cfg.profile then
    Mvpn_sim.Profile.enable (Engine.profiler (Scenario.engine sc));
  let fates = fatelog_create () in
  Network.set_fate_hook net
    (Some
       (match sampler with
        | None -> fatelog_add fates
        | Some sm ->
          fun ~time ~vpn ~band ~dropped ~latency ->
            Sampler.observe_fate sm ~time ~vpn ~band ~dropped ~latency;
            fatelog_add fates ~time ~vpn ~band ~dropped ~latency));
  arm_workload cfg sc ~only:(fun _ _ -> true);
  Engine.run ~until:horizon (Scenario.engine sc);
  if cfg.profile then
    Mvpn_sim.Profile.publish (Engine.profiler (Scenario.engine sc));
  let finis = Registry.snapshot () in
  let diff name =
    Registry.snapshot_counter finis name
    - Registry.snapshot_counter base name
  in
  let registry_json = Registry.to_json ~trace_events:0 () in
  let slo = replay_slo ~scenario:sc ~horizon (fatelog_iter fates) in
  { shards = 1;
    sizes =
      [| Topology.node_count (Network.topology net) |];
    cut_links = 0;
    lookahead = true;
    delivered = diff "net.delivered";
    dropped = diff "net.drops";
    events = diff "sim.events";
    scheduled = diff "sim.scheduled";
    exchanged = 0;
    leftover = 0;
    overflow = 0;
    classes = class_sums [ Scenario.class_reports sc ];
    slo; registry_json; horizon }
