bench/e2_isolation.ml: Array List Mvpn_core Mvpn_net Mvpn_sim Network Printf Qos_mapping Scenario Site Tables
