(* E7 — traffic engineering in the backbone (§5, claim C6/TE).

   A skewed demand matrix on the 12-POP ring: all demands want the same
   express chord. Shortest-path routing stacks them; constraint-based
   routing spreads them. Reported per demand count: max link load, the
   load spread, links carrying traffic, and overcommitted links. *)

open Mvpn_core
module Topology = Mvpn_sim.Topology
module Rsvp_te = Mvpn_mpls.Rsvp_te
module Plane = Mvpn_mpls.Plane

(* Demands aimed across the ring so their shortest paths all share the
   0-6 chord and its adjacent arcs. *)
let demand_matrix k =
  List.init k (fun i ->
      let src = i mod 3 in  (* POPs 0,1,2 *)
      let dst = 6 + (i mod 3) in  (* POPs 6,7,8 *)
      (src, dst, 12e6))

let run_mode ~admission k =
  let bb = Backbone.build ~pops:12 () in
  let topo = Backbone.topology bb in
  let plane = Plane.create ~nodes:(Topology.node_count topo) in
  let te = Rsvp_te.create topo plane in
  let pops = Backbone.pops bb in
  let accepted = ref 0 and refused = ref 0 in
  List.iter
    (fun (s, d, bw) ->
       match
         Rsvp_te.signal te ~admission ~src:pops.(s) ~dst:pops.(d)
           ~bandwidth:bw
       with
       | Ok _ -> incr accepted
       | Error _ -> incr refused)
    (demand_matrix k);
  let links = Topology.links topo in
  let fracs =
    List.filter_map
      (fun l ->
         let f = Rsvp_te.reserved_fraction te l in
         if f > 0.0 then Some f else None)
      links
  in
  let max_frac = List.fold_left Float.max 0.0 fracs in
  let mean_frac =
    if fracs = [] then 0.0
    else List.fold_left ( +. ) 0.0 fracs /. float_of_int (List.length fracs)
  in
  ( !accepted, !refused, max_frac, mean_frac, List.length fracs,
    List.length (Rsvp_te.overcommitted_links te) )

(* Packet-level: two 2 Mb/s flows whose shortest paths share one
   3 Mb/s link; with operator-placed explicit tunnels the second flow
   takes the long way and both arrive clean. *)
let packet_level ~use_te =
  let topo = Topology.create () in
  (* Ring of 6 at 3 Mb/s; sources at 0 and 5, sink at 2. *)
  let ids = Topology.ring topo 6 ~bandwidth:3e6 ~delay:0.002 in
  let engine = Mvpn_sim.Engine.create () in
  let net =
    Mvpn_core.Network.create
      ~policy:(Mvpn_core.Qos_mapping.Diffserv
                 Mvpn_core.Qos_mapping.default_diffserv_sched)
      engine topo
  in
  let module Network = Mvpn_core.Network in
  let module Fib = Mvpn_net.Fib in
  let module Prefix = Mvpn_net.Prefix in
  (* Plain IP routing: everything toward 10.2/16 via the short arc. *)
  let dest = Prefix.of_string_exn "10.2.0.0/16" in
  let route_via node nh =
    Fib.add (Network.fib net node) dest
      { Fib.next_hop = nh; cost = 1; source = Fib.Static }
  in
  route_via ids.(0) ids.(1);
  route_via ids.(1) ids.(2);
  route_via ids.(5) ids.(0);
  route_via ids.(3) ids.(2);
  route_via ids.(4) ids.(3);
  Fib.add (Network.fib net ids.(2)) dest
    { Fib.next_hop = Fib.local_delivery; cost = 0; source = Fib.Connected };
  let te = Rsvp_te.create topo (Network.plane net) in
  if use_te then begin
    (* Operator explicit routes: flow from 0 keeps the short arc; the
       flow from 5 is pinned the long way round. *)
    (match
       Rsvp_te.signal te ~explicit_path:[ids.(0); ids.(1); ids.(2)]
         ~src:ids.(0) ~dst:ids.(2) ~bandwidth:2e6
     with
     | Ok tn ->
       (match
          Plane.find_ftn (Network.plane net) ids.(0) (Rsvp_te.ingress_fec tn)
        with
        | Some e ->
          Network.set_interceptor net ids.(0) (fun ~from packet ->
              match from with
              | None when not (Mvpn_net.Packet.labelled packet) ->
                Mvpn_net.Packet.push_label packet ~label:e.Plane.push
                  ~exp:(Mvpn_net.Dscp.to_exp
                          (Mvpn_net.Packet.visible_dscp packet))
                  ~ttl:64;
                Network.transmit net ~from:ids.(0) ~to_:e.Plane.next_hop
                  packet;
                Network.Consumed
              | _ -> Network.Continue)
        | None -> ())
     | Error _ -> ());
    match
      Rsvp_te.signal te
        ~explicit_path:[ids.(5); ids.(4); ids.(3); ids.(2)]
        ~src:ids.(5) ~dst:ids.(2) ~bandwidth:2e6
    with
    | Ok tn ->
      (match
         Plane.find_ftn (Network.plane net) ids.(5) (Rsvp_te.ingress_fec tn)
       with
       | Some e ->
         Network.set_interceptor net ids.(5) (fun ~from packet ->
             match from with
             | None when not (Mvpn_net.Packet.labelled packet) ->
               Mvpn_net.Packet.push_label packet ~label:e.Plane.push
                 ~exp:(Mvpn_net.Dscp.to_exp
                         (Mvpn_net.Packet.visible_dscp packet))
                 ~ttl:64;
               Network.transmit net ~from:ids.(5) ~to_:e.Plane.next_hop
                 packet;
               Network.Consumed
             | _ -> Network.Continue)
       | None -> ())
    | Error _ -> ()
  end;
  let registry = Mvpn_core.Traffic.registry engine in
  Network.set_sink net ids.(2) (Mvpn_core.Traffic.sink registry);
  let send_from label node =
    let emit =
      Mvpn_core.Traffic.sender registry ~net ~src_node:node
        ~flow:(Mvpn_net.Flow.make
                 (Mvpn_net.Ipv4.of_octets 10 0 node 1)
                 (Mvpn_net.Ipv4.of_string_exn "10.2.0.1"))
        ~dscp:Mvpn_net.Dscp.best_effort
        ~collector:(Mvpn_core.Traffic.collector registry label)
        ()
    in
    Mvpn_core.Traffic.cbr engine ~start:0.0 ~stop:20.0 ~rate_bps:2e6
      ~packet_bytes:1500 emit
  in
  send_from "flow-a" ids.(0);
  send_from "flow-b" ids.(5);
  Mvpn_sim.Engine.run engine;
  ( Mvpn_core.Traffic.report registry "flow-a",
    Mvpn_core.Traffic.report registry "flow-b" )

let run () =
  Tables.heading
    "E7: skewed demands (12 Mb/s each) on a 45 Mb/s ring: SPF vs CSPF";
  let widths = [8; 10; 9; 9; 10; 10; 11; 8] in
  Tables.row widths
    [ "demands"; "mode"; "accept"; "refuse"; "max load"; "mean load";
      "links used"; "overcmt" ];
  Tables.rule widths;
  List.iter
    (fun k ->
       List.iter
         (fun (name, admission) ->
            let accepted, refused, max_f, mean_f, used, over =
              run_mode ~admission k
            in
            Tables.row widths
              [ string_of_int k; name; string_of_int accepted;
                string_of_int refused; Tables.pct max_f; Tables.pct mean_f;
                string_of_int used; string_of_int over ])
         [("spf", Rsvp_te.Igp_only); ("cspf", Rsvp_te.Cspf)];
       Tables.rule widths)
    [3; 6; 9; 12; 18; 24];
  Tables.note
    "\nExpected shape: SPF accepts everything onto the same few links —\n\
     max load passes 100%% and links overcommit as demands grow. CSPF\n\
     keeps max load <= 100%% by detouring over more links, and starts\n\
     refusing only when the whole region is genuinely full ('avoid\n\
     congested, constrained or disabled links', §3).";

  Tables.heading
    "E7b: packet level — two 2 Mb/s flows sharing a 3 Mb/s arc, explicit routes";
  let widths = [8; 10; 10; 10; 10] in
  Tables.row widths ["te"; "a loss"; "a p99 ms"; "b loss"; "b p99 ms"];
  Tables.rule widths;
  List.iter
    (fun use_te ->
       let a, b = packet_level ~use_te in
       Tables.row widths
         [ string_of_bool use_te;
           Tables.pct a.Mvpn_qos.Sla.loss;
           Tables.ms a.Mvpn_qos.Sla.p99_delay;
           Tables.pct b.Mvpn_qos.Sla.loss;
           Tables.ms b.Mvpn_qos.Sla.p99_delay ])
    [false; true];
  Tables.note
    "\nWithout TE both flows pile onto the short arc and together offer\n\
     4 Mb/s to a 3 Mb/s link — ~25%% combined loss. Explicit tunnels pin\n\
     the second flow the long way and both run clean: 'users can also\n\
     control QoS and general traffic flow more precisely' (§3)."
