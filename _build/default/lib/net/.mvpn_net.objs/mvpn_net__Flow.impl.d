lib/net/flow.ml: Format Hashtbl Int Ipv4
