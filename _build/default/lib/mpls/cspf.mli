(** Constraint-based shortest path first.

    Plain SPF (§2.2) routes "without knowledge of the commitments
    already made by the network". CSPF prunes links that cannot honour a
    new commitment — insufficient unreserved bandwidth, administratively
    avoided, or down — and runs SPF on what remains. This is the
    constraint-based-routing piece the paper's §5 deployment leans on
    for guaranteed QoS. *)

type constraints = {
  bandwidth : float;  (** bits per second the tunnel must reserve *)
  avoid_nodes : int list;  (** exclude as transit (endpoints exempt) *)
  avoid_links : (int * int) list;  (** directed pairs to exclude *)
  max_hops : int option;  (** reject longer paths *)
}

val no_constraints : constraints
(** Zero bandwidth, nothing avoided, no hop limit: degenerates to SPF. *)

val with_bandwidth : float -> constraints

val path :
  Mvpn_sim.Topology.t -> src:int -> dst:int -> constraints ->
  int list option
(** Cheapest path satisfying the constraints, or [None]. *)

val igp_path :
  Mvpn_sim.Topology.t -> src:int -> dst:int -> int list option
(** The resource-blind baseline: plain SPF on IGP costs over up links,
    ignoring reservations entirely. *)
