(** The reference provider backbone used by examples and experiments.

    A ring of POPs with express chords (Figure 4's "MPLS deployment in a
    backbone"): every POP router is both P (core LSR) and PE (edge)
    capable, and customer sites attach to POPs over access links. Each
    POP owns a /32 loopback — the BGP next-hop the LDP FECs bind labels
    to. *)

type t

val build :
  ?pops:int ->
  ?core_bandwidth:float ->
  ?core_delay:float ->
  ?chords:(int * int) list ->
  ?into:Mvpn_sim.Topology.t ->
  ?loopback_octet:int ->
  unit -> t
(** Defaults: 12 POPs at 45 Mb/s (a DS3-era backbone) with 4 ms core
    hops. Default chords scale with the ring (a diameter plus quarter
    offsets; none below 5 POPs). [into] appends this backbone's nodes
    to an existing topology (multi-carrier internetworks);
    [loopback_octet] (default 255) disambiguates the 172.31.x.pop/32
    loopback range between carriers sharing one address space.
    @raise Invalid_argument if [loopback_octet] is outside [0, 255]. *)

val topology : t -> Mvpn_sim.Topology.t

val pops : t -> int array
(** POP node ids, ring order. *)

val pop_count : t -> int

val loopback : t -> pop:int -> Mvpn_net.Prefix.t
(** The /32 loopback prefix of a POP (by array index).
    @raise Invalid_argument on an unknown index. *)

val pop_of_node : t -> int -> int option
(** Reverse lookup: which POP index a node id is, if any. *)

val attach_site :
  ?access_bandwidth:float -> ?access_delay:float ->
  t -> id:int -> name:string -> vpn:int -> prefix:Mvpn_net.Prefix.t ->
  pop:int -> Site.t
(** Create a CE node, connect it to the POP (default 2 Mb/s access at
    1 ms) and return the site record. Call before {!Network.create} so
    the CE's links get ports. *)

val sites : t -> Site.t list
(** All sites attached so far, in attachment order. *)
