(** Layer-2 VPNs: point-to-point pseudowires over the MPLS backbone.

    The paper's VPN taxonomy spans both peer-model L3 services (the
    {!Mpls_vpn} core) and the circuit services providers already sold —
    frame relay and ATM PVCs. A pseudowire is how those circuits ride
    the same label-switched backbone: an opaque L2 payload gets a
    two-level stack (transport label to the remote PE, pseudowire label
    selecting the attachment circuit) and pops out at the far edge
    unchanged. This module implements that service: emulated circuits
    between attachment circuits on two PEs, with per-direction sequence
    numbering and misorder detection (the Martini control word).

    The payload is opaque by construction: the carried {!Mvpn_net.Packet}
    is delivered to the far attachment circuit exactly as injected —
    headers unread, FIBs unconsulted. A frame-relay PVC carried this way
    keeps its DLCI and DE bit end to end (see the interworking test). *)

type t

val deploy : net:Network.t -> backbone:Backbone.t -> t
(** Bootstrap the transport layer (IGP + LDP over the POP loopbacks)
    and install the pseudowire demultiplexer on every PE. Safe to run
    on a network that also carries an {!Mpls_vpn} (labels never
    collide — both draw from the same per-node allocators). *)

type endpoint = {
  pe : int;  (** the PE node this attachment circuit terminates on *)
  on_deliver : Mvpn_net.Packet.t -> unit;
      (** the attachment circuit: what to do with frames popping out *)
}

val create_pw :
  t -> a:endpoint -> b:endpoint -> (int, string) result
(** Establish a bidirectional pseudowire; returns its id. Fails when
    the PEs cannot reach each other. *)

val send : t -> pw:int -> from_a:bool -> Mvpn_net.Packet.t -> unit
(** Inject a payload at one end ([from_a] chooses the direction). The
    packet's wire size grows by the label stack and control word and
    shrinks back on delivery.
    @raise Invalid_argument on an unknown pseudowire. *)

val misordered : t -> pw:int -> int
(** Frames that arrived out of sequence (per the control word), summed
    over both directions. *)

val delivered : t -> pw:int -> int

val pw_count : t -> int
