module Engine = Mvpn_sim.Engine
module Packet = Mvpn_net.Packet

type t = {
  engine : Engine.t;
  bucket : Token_bucket.t;
  rate_bytes_per_s : float;
  queue_bytes : int;
  release : Packet.t -> unit;
  queue : Packet.t Queue.t;
  mutable backlog : int;
  mutable draining : bool;
  mutable shaped : int;
  mutable dropped : int;
}

let create engine ~rate_bps ~burst_bytes ~queue_bytes ~release =
  if queue_bytes <= 0 then
    invalid_arg "Shaper.create: queue must be positive";
  { engine;
    bucket = Token_bucket.create ~rate_bps ~burst_bytes;
    rate_bytes_per_s = rate_bps /. 8.0;
    queue_bytes; release; queue = Queue.create (); backlog = 0;
    draining = false; shaped = 0; dropped = 0 }

(* Serve the head of the queue as soon as its tokens accrue. *)
let rec drain t =
  match Queue.peek_opt t.queue with
  | None -> t.draining <- false
  | Some head ->
    let now = Engine.now t.engine in
    if Token_bucket.take t.bucket ~now ~bytes:head.Packet.size then begin
      ignore (Queue.pop t.queue);
      t.backlog <- t.backlog - head.Packet.size;
      t.release head;
      drain t
    end
    else begin
      t.draining <- true;
      let deficit =
        float_of_int head.Packet.size -. Token_bucket.available t.bucket ~now
      in
      let wait = Float.max 1e-6 (deficit /. t.rate_bytes_per_s) in
      Engine.schedule t.engine ~delay:wait (fun () -> drain t)
    end

let offer t packet =
  let now = Engine.now t.engine in
  if Queue.is_empty t.queue
  && Token_bucket.take t.bucket ~now ~bytes:packet.Packet.size
  then begin
    t.release packet;
    true
  end
  else if t.backlog + packet.Packet.size > t.queue_bytes then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    Queue.add packet t.queue;
    t.backlog <- t.backlog + packet.Packet.size;
    t.shaped <- t.shaped + 1;
    if not t.draining then drain t;
    true
  end

let backlog_bytes t = t.backlog

let shaped t = t.shaped

let dropped t = t.dropped
