(** Binary min-heap keyed on float priorities, with FIFO tie-breaking.

    The event queue of the discrete-event engine. Equal-time events pop
    in insertion order, which keeps simulations deterministic — the
    property every reproducibility test relies on. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h k v] inserts [v] with priority [k]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element; among equal
    priorities, the earliest pushed. *)

val pop_due :
  'a t -> bound:float -> strict:bool -> default:'a -> key_out:floatarray -> 'a
(** Allocation-free pop for hot loops. Removes and returns the
    minimum-priority element if it is due — key [<= bound], or
    [< bound] when [strict] — writing its key into [key_out.{0}];
    otherwise returns [default] (compare physically) and touches
    nothing. Never allocates, unlike the option/tuple of
    [peek]+[pop]. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
