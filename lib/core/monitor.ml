module Engine = Mvpn_sim.Engine
module Stats = Mvpn_sim.Stats
module Port = Mvpn_qos.Port
module Queue_disc = Mvpn_qos.Queue_disc

type series = {
  utilization : Stats.Timeseries.t;
  backlog : Stats.Timeseries.t;
}

type t = {
  net : Network.t;
  table : (int, series) Hashtbl.t;
  mutable stopped : bool;
}

let sample t link_id =
  let port = Network.port t.net ~link_id in
  let now = Engine.now (Network.engine t.net) in
  match Hashtbl.find_opt t.table link_id with
  | None -> ()
  | Some s ->
    Stats.Timeseries.add s.utilization now (Port.utilization port ~now);
    Stats.Timeseries.add s.backlog now
      (float_of_int (Queue_disc.backlog_bytes (Port.qdisc port)))

let start ?(interval = 1.0) ?until net ~link_ids =
  if interval <= 0.0 then invalid_arg "Monitor.start: interval must be positive";
  (match until with
   | Some horizon when horizon < 0.0 ->
     invalid_arg "Monitor.start: until must be non-negative"
   | _ -> ());
  let t = { net; table = Hashtbl.create 16; stopped = false } in
  List.iter
    (fun link_id ->
       Hashtbl.replace t.table link_id
         { utilization = Stats.Timeseries.create ();
           backlog = Stats.Timeseries.create () })
    link_ids;
  let engine = Network.engine net in
  let expired () =
    match until with
    | Some horizon -> Engine.now engine > horizon
    | None -> false
  in
  let rec tick () =
    if not (t.stopped || expired ()) then begin
      List.iter (sample t) link_ids;
      Engine.schedule engine ~delay:interval tick
    end
  in
  Engine.schedule engine ~delay:interval tick;
  t

let stop t = t.stopped <- true

let find t link_id =
  match Hashtbl.find_opt t.table link_id with
  | Some s -> s
  | None -> raise Not_found

let utilization_series t ~link_id = (find t link_id).utilization

let backlog_series t ~link_id = (find t link_id).backlog

let peak_utilization t =
  Hashtbl.fold
    (fun link_id s acc ->
       (link_id, Stats.Timeseries.max_value s.utilization) :: acc)
    t.table []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let peak_backlog_bytes t =
  Hashtbl.fold
    (fun _ s acc ->
       Stdlib.max acc
         (int_of_float (Stats.Timeseries.max_value s.backlog)))
    t.table 0
