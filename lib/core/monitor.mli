(** Link monitoring: periodic utilization and backlog sampling.

    "Emerging technologies, such as MPLS, promise to deliver improved
    IP network traffic engineering tools that will enable providers to
    more easily measure, monitor, and meet different service level
    requirements across their backbones" (§5). This is the measure/
    monitor part: a sampler that walks selected ports on a fixed period
    and records utilization and queue backlog as time series. *)

type t

val start :
  ?interval:float ->
  ?until:float ->
  Network.t -> link_ids:int list -> t
(** Begin sampling the given links every [interval] seconds (default
    1.0) on the network's engine.

    {b Warning}: without [until] the sampler re-arms itself forever, so
    a bare [Engine.run] (no [~until]) will {e never drain} — you must
    either drive the engine with [Engine.run ~until:...], call {!stop}
    first, or pass [?until] here. With [~until:horizon] the sampler
    stops re-arming at the first tick after [horizon] (at most one
    trailing no-op event), so a bare [Engine.run] terminates.
    @raise Invalid_argument on a non-positive interval or a negative
    horizon. *)

val stop : t -> unit
(** Stop sampling after the currently armed tick. *)

val utilization_series : t -> link_id:int -> Mvpn_sim.Stats.Timeseries.t
(** Utilization samples (fraction of line rate, averaged since the
    start of the run) for one monitored link.
    @raise Not_found if the link is not monitored. *)

val backlog_series : t -> link_id:int -> Mvpn_sim.Stats.Timeseries.t
(** Queue backlog (bytes) at each sample instant. *)

val peak_utilization : t -> (int * float) list
(** Per monitored link: the highest utilization sample, sorted worst
    first. *)

val peak_backlog_bytes : t -> int
(** Largest backlog observed on any monitored link. *)
