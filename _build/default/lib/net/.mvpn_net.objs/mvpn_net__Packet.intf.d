lib/net/packet.mli: Dscp Flow Format Ipv4
