examples/voice_sla.mli:
