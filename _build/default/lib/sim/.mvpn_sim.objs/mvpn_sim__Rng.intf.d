lib/sim/rng.mli:
