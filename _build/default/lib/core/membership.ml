type mechanism = Directory | Flooded

type t = {
  mechanism : mechanism;
  pe_count : int;
  mutable sites : Site.t list;  (* reverse join order *)
  mutable messages : int;
}

let create ?(mechanism = Directory) ~pe_count () =
  { mechanism; pe_count; sites = []; messages = 0 }

let members t ~vpn =
  List.rev (List.filter (fun (s : Site.t) -> s.Site.vpn = vpn) t.sites)

let join t site =
  if List.exists (fun (s : Site.t) -> s.Site.id = site.Site.id) t.sites then
    invalid_arg
      (Printf.sprintf "Membership.join: site %d already a member"
         site.Site.id);
  let cost =
    match t.mechanism with
    | Directory ->
      (* Register with the server, then notify each existing member of
         the same VPN. *)
      1 + List.length (members t ~vpn:site.Site.vpn)
    | Flooded ->
      (* Advertised to every PE in the provider network. *)
      t.pe_count
  in
  t.messages <- t.messages + cost;
  t.sites <- site :: t.sites

let leave t ~site_id =
  match List.find_opt (fun (s : Site.t) -> s.Site.id = site_id) t.sites with
  | None -> false
  | Some site ->
    t.sites <- List.filter (fun (s : Site.t) -> s.Site.id <> site_id) t.sites;
    let cost =
      match t.mechanism with
      | Directory -> 1 + List.length (members t ~vpn:site.Site.vpn)
      | Flooded -> t.pe_count
    in
    t.messages <- t.messages + cost;
    true

let discover t ~asking =
  t.messages <- t.messages + 1;
  List.filter
    (fun (s : Site.t) -> s.Site.id <> asking.Site.id)
    (members t ~vpn:asking.Site.vpn)

let vpn_ids t =
  List.sort_uniq Int.compare
    (List.map (fun (s : Site.t) -> s.Site.vpn) t.sites)

let site_count t = List.length t.sites

let messages t = t.messages

let pe_attachment_count t ~pe =
  List.length (List.filter (fun (s : Site.t) -> s.Site.pe_node = pe) t.sites)
