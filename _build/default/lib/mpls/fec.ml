module Prefix = Mvpn_net.Prefix

type t =
  | Prefix_fec of Prefix.t
  | Tunnel_fec of int
  | Vpn_fec of { vpn : int; prefix : Prefix.t }

let rank = function Prefix_fec _ -> 0 | Tunnel_fec _ -> 1 | Vpn_fec _ -> 2

let compare a b =
  match a, b with
  | Prefix_fec p, Prefix_fec q -> Prefix.compare p q
  | Tunnel_fec i, Tunnel_fec j -> Int.compare i j
  | Vpn_fec x, Vpn_fec y ->
    let c = Int.compare x.vpn y.vpn in
    if c <> 0 then c else Prefix.compare x.prefix y.prefix
  | (Prefix_fec _ | Tunnel_fec _ | Vpn_fec _), _ ->
    Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Prefix_fec p -> Hashtbl.hash (0, Prefix.hash p)
  | Tunnel_fec i -> Hashtbl.hash (1, i)
  | Vpn_fec { vpn; prefix } -> Hashtbl.hash (2, vpn, Prefix.hash prefix)

let to_string = function
  | Prefix_fec p -> Printf.sprintf "fec:%s" (Prefix.to_string p)
  | Tunnel_fec i -> Printf.sprintf "tunnel:%d" i
  | Vpn_fec { vpn; prefix } ->
    Printf.sprintf "vpn%d:%s" vpn (Prefix.to_string prefix)

let pp ppf f = Format.pp_print_string ppf (to_string f)
