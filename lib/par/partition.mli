(** Topology partitioning for the parallel runner.

    Cuts a {!Mvpn_sim.Topology} into [shards] node sets by
    deterministic region growing, minimizing the number of cut links
    (links whose endpoints land in different shards — every one becomes
    a cross-domain exchange channel and bounds the synchronization
    lookahead).

    An optional [hint] (e.g. {!Scenario.region_hint}) pre-clusters
    nodes: nodes sharing a hint value are never separated, so a POP and
    its homed sites always travel together and the cut set stays on the
    thin core. *)

type t = {
  shards : int;  (** effective shard count after clamping *)
  owner : int array;  (** node id → owning shard, in [0, shards) *)
  cut : Mvpn_sim.Topology.link list;
      (** unidirectional links crossing shards, in link-id order *)
}

val compute : ?hint:(int -> int option) -> Mvpn_sim.Topology.t -> shards:int -> t
(** Deterministic: equal topology + hint + shard count give equal
    partitions. [shards] clamps to [1, number of clusters] (a cluster
    is a hint group or a hintless node), so [shards = 1] is the
    identity partition with no cut links, and asking for more shards
    than clusters (or nodes) degrades gracefully. Isolated nodes are
    assigned like any other cluster — every node gets an owner.
    @raise Invalid_argument if [shards < 1]. *)

val sizes : t -> int array
(** Nodes owned per shard. *)

val owner_of : t -> int -> int
(** @raise Invalid_argument on an unknown node id. *)
