(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic element of the simulation — arrival processes,
    packet sizes, topology generation — draws from an explicit [t] so
    that a run is a pure function of its seeds and experiments are
    exactly reproducible. *)

type t

val create : int -> t
(** [create seed] is a fresh generator; equal seeds give equal streams. *)

val fork : t -> t
(** [fork r] derives an independent generator from [r], advancing [r].
    Use one fork per traffic source so adding a source does not perturb
    the others' streams. *)

val split : t -> int -> t
(** [split r i] is the [i]-th deterministic substream of [r]'s current
    position, without advancing [r]: the same [(r, i)] always yields
    the same stream, and distinct indices yield decorrelated streams.
    Use one substream per shard of a partitioned run so the assignment
    of work to domains never perturbs the draws. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int r bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in r lo hi] is uniform in [lo, hi] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float r x] is uniform in [0, x). *)

val uniform : t -> float
(** Uniform in [0, 1). *)

val bool : t -> float -> bool
(** [bool r p] is [true] with probability [p]. *)

val exponential : t -> rate:float -> float
(** Exponential variate with the given rate (mean [1 /. rate]).
    @raise Invalid_argument if [rate <= 0]. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto variate: heavy-tailed burst/file sizes.
    @raise Invalid_argument if [shape <= 0] or [scale <= 0]. *)

val normal : t -> mean:float -> stddev:float -> float
(** Gaussian variate (Box–Muller). *)

val choose : t -> 'a array -> 'a
(** Uniformly random element. @raise Invalid_argument on empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
