lib/net/fib.ml: Format List Option Prefix Radix
