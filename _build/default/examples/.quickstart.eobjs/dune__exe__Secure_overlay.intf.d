examples/secure_overlay.mli:
