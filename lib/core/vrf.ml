module Prefix = Mvpn_net.Prefix
module Radix = Mvpn_net.Radix
module Mpbgp = Mvpn_routing.Mpbgp

type next_hop =
  | Local_site of Site.t
  | Remote_pe of { pe : int; vpn_label : int }
  | Via_neighbor of int

type t = {
  pe : int;
  vpn : int;
  rd : Mpbgp.rd;
  import_rts : Mpbgp.rt list;
  export_rts : Mpbgp.rt list;
  routes : next_hop Radix.t;
  (* Direct-mapped dst → LPM-result cache in front of the radix walk,
     same idiom as the dataplane's FIB cache: a slot holds the address
     it answers for and the trie's own [option] box. The whole cache is
     flushed (lazily, via the stored generation) whenever the trie
     mutates, so a hit can never serve a route the trie no longer
     holds. *)
  ck : int array;  (* Ipv4.to_int keys; -1 = empty *)
  cv : next_hop option array;
  mutable cgen : int;
}

let cache_slots = 256

let slot_of addr = (addr * 0x9E3779B1) lsr 16 land (cache_slots - 1)

let m_cache_hit = Mvpn_telemetry.Registry.counter "vrf.cache.hit"
let m_cache_miss = Mvpn_telemetry.Registry.counter "vrf.cache.miss"

let create ~pe ~vpn ~rd ~import_rts ~export_rts =
  { pe; vpn; rd; import_rts; export_rts; routes = Radix.create ();
    ck = Array.make cache_slots (-1); cv = Array.make cache_slots None;
    (* -1 never equals a real generation, so the first lookup flushes. *)
    cgen = -1 }

let pe t = t.pe
let vpn t = t.vpn
let rd t = t.rd
let import_rts t = t.import_rts
let export_rts t = t.export_rts

let add_local t site = Radix.add t.routes site.Site.prefix (Local_site site)

let install_remote t ~prefix ~pe ~vpn_label =
  Radix.add t.routes prefix (Remote_pe { pe; vpn_label })

let install_via t ~prefix ~neighbor =
  Radix.add t.routes prefix (Via_neighbor neighbor)

let remove t prefix = Radix.remove t.routes prefix

let lookup t addr =
  let g = Radix.generation t.routes in
  if g <> t.cgen then begin
    Array.fill t.ck 0 cache_slots (-1);
    t.cgen <- g
  end;
  let k = Mvpn_net.Ipv4.to_int addr in
  let s = slot_of k in
  if t.ck.(s) = k then begin
    Mvpn_telemetry.Counter.incr m_cache_hit;
    t.cv.(s)
  end
  else begin
    Mvpn_telemetry.Counter.incr m_cache_miss;
    let r = Radix.lookup_value t.routes addr in
    t.ck.(s) <- k;
    t.cv.(s) <- r;
    r
  end

let route_count t = Radix.cardinal t.routes

let iter_routes t f = Radix.iter f t.routes

let local_sites t =
  Radix.fold
    (fun _ nh acc ->
       match nh with
       | Local_site s -> s :: acc
       | Remote_pe _ | Via_neighbor _ -> acc)
    t.routes []
  |> List.rev

let clear_remote t =
  let victims =
    Radix.fold
      (fun p nh acc ->
         match nh with
         | Remote_pe _ -> p :: acc
         | Local_site _ | Via_neighbor _ -> acc)
      t.routes []
  in
  List.iter (fun p -> ignore (Radix.remove t.routes p)) victims;
  List.length victims
