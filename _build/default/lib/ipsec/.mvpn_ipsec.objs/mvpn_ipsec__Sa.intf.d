lib/ipsec/sa.mli: Crypto Replay
