lib/core/monitor.mli: Mvpn_sim Network
