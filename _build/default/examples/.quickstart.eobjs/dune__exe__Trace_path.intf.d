examples/trace_path.mli:
