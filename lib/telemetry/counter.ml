type t = { name : string; mutable count : int }

let make name = { name; count = 0 }

let name t = t.name

let incr t = if !Control.enabled then t.count <- t.count + 1

let add t n = if !Control.enabled then t.count <- t.count + n

let set t n = if !Control.enabled then t.count <- n

let value t = t.count

let reset t = t.count <- 0

let pp ppf t = Format.fprintf ppf "%s = %d" t.name t.count
