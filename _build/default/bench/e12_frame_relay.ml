(* E12 — frame relay parity (§1, §5 conclusion).

   "Together, these technologies enable services with performance
   characteristics rivaling those of frame relay solutions but with the
   added benefit of being standards-based."

   Three parity checks against the FR substrate:
   (a) the traffic contract: FR CIR/Bc/Be policing and the DiffServ
       srTCM meter make identical per-frame decisions;
   (b) the congestion contract: FR sheds DE frames first under
       pressure, as WRED sheds high drop precedence first (A2);
   (c) the overhead: FR's 6 bytes vs the 8-byte MPLS stack vs ATM. *)

open Mvpn_frelay
module Meter = Mvpn_qos.Meter
module Rng = Mvpn_sim.Rng

let contract_parity () =
  Tables.heading "E12a: FR CIR/Bc/Be vs DiffServ srTCM on one bursty trace";
  let cir = 128_000.0 and burst = 64_000.0 in
  let pvc =
    Pvc.create { Pvc.cir_bps = cir; bc_bits = burst; be_bits = burst }
  in
  let meter =
    Meter.srtcm ~cir_bps:cir ~cbs_bytes:(burst /. 8.0)
      ~ebs_bytes:(burst /. 8.0)
  in
  let rng = Rng.create 2024 in
  let n = 50_000 in
  let agree = ref 0 in
  let fr_counts = [| 0; 0; 0 |] and ds_counts = [| 0; 0; 0 |] in
  let now = ref 0.0 in
  for _ = 1 to n do
    now := !now +. Rng.exponential rng ~rate:40.0;
    let payload = Rng.int_in rng 64 1494 in
    let frame = Frame.make ~dlci:100 ~payload in
    let fr = Pvc.police pvc ~now:!now frame in
    let ds = Meter.meter meter ~now:!now ~bytes:(Frame.wire_bytes frame) in
    let fr_idx =
      match fr with Pvc.Committed -> 0 | Pvc.Excess -> 1 | Pvc.Dropped -> 2
    in
    let ds_idx =
      match ds with
      | Meter.Green -> 0
      | Meter.Yellow -> 1
      | Meter.Red -> 2
    in
    fr_counts.(fr_idx) <- fr_counts.(fr_idx) + 1;
    ds_counts.(ds_idx) <- ds_counts.(ds_idx) + 1;
    if fr_idx = ds_idx then incr agree
  done;
  let widths = [22; 12; 12; 12] in
  Tables.row widths ["mechanism"; "committed"; "excess/DE"; "dropped"];
  Tables.rule widths;
  Tables.row widths
    [ "FR CIR/Bc/Be"; string_of_int fr_counts.(0);
      string_of_int fr_counts.(1); string_of_int fr_counts.(2) ];
  Tables.row widths
    [ "DiffServ srTCM"; string_of_int ds_counts.(0);
      string_of_int ds_counts.(1); string_of_int ds_counts.(2) ];
  Tables.note "\nPer-frame agreement: %d / %d (%.2f%%)." !agree n
    (100.0 *. float_of_int !agree /. float_of_int n)

let congestion_parity () =
  Tables.heading "E12b: congestion contract — DE shedding under pressure";
  let sw = Frswitch.create ~congestion_threshold:8 ~queue_capacity:24 () in
  ignore (Frswitch.cross_connect sw ~in_dlci:100 ~out_dlci:100 ~next_hop:1);
  let rng = Rng.create 99 in
  let offered_clean = ref 0 and offered_de = ref 0 in
  let lost_clean = ref 0 and lost_de = ref 0 in
  for _ = 1 to 4000 do
    (* Offer two frames per drain: sustained 2x overload. *)
    for _ = 1 to 2 do
      let frame = Frame.make ~dlci:100 ~payload:500 in
      let de = Rng.bool rng 0.5 in
      frame.Frame.de <- de;
      if de then incr offered_de else incr offered_clean;
      match Frswitch.submit sw frame with
      | Frswitch.Forwarded _ -> ()
      | Frswitch.Discarded_de -> incr lost_de
      | Frswitch.Queue_full ->
        if de then incr lost_de else incr lost_clean
      | Frswitch.Unknown_dlci -> ()
    done;
    ignore (Frswitch.drain sw)
  done;
  let widths = [14; 10; 10; 10] in
  Tables.row widths ["colour"; "offered"; "lost"; "loss"];
  Tables.rule widths;
  Tables.row widths
    [ "clean"; string_of_int !offered_clean; string_of_int !lost_clean;
      Tables.pct (float_of_int !lost_clean /. float_of_int !offered_clean) ];
  Tables.row widths
    [ "DE-marked"; string_of_int !offered_de; string_of_int !lost_de;
      Tables.pct (float_of_int !lost_de /. float_of_int !offered_de) ];
  Tables.note
    "\nFR's DE bit buys clean traffic priority under congestion exactly\n\
     as WRED's drop precedences do for AF classes (ablation A2) — the\n\
     'rivaling frame relay' claim holds mechanism by mechanism."

let overhead_parity () =
  Tables.heading "E12c: per-packet overhead, FR vs MPLS vs ATM (1500 B)";
  let widths = [22; 12; 10] in
  Tables.row widths ["transport"; "overhead B"; "tax"];
  Tables.rule widths;
  let payload = 1500 in
  Tables.row widths
    [ "frame relay"; string_of_int Frame.overhead_bytes;
      Tables.pct
        (float_of_int Frame.overhead_bytes
         /. float_of_int (payload + Frame.overhead_bytes)) ];
  Tables.row widths
    [ "mpls (2 labels)"; "8";
      Tables.pct (8.0 /. float_of_int (payload + 8)) ];
  let atm_over = Mvpn_atm.Aal5.wire_bytes ~payload - payload in
  Tables.row widths
    [ "atm/aal5"; string_of_int atm_over;
      Tables.pct (Mvpn_atm.Aal5.overhead_fraction ~payload) ];
  Tables.note
    "\nMPLS matches frame relay's frugality (within 2 bytes) while\n\
     running over any layer 2 — 'regardless of the layer 2 technology'\n\
     (§3)."

(* The constructive form of parity: carry an actual FR PVC across the
   label-switched backbone on a pseudowire and verify the service. *)
let interworking () =
  Tables.heading
    "E12d: a frame relay PVC emulated over the MPLS backbone (pseudowire)";
  let open Mvpn_core in
  let bb = Backbone.build ~pops:8 () in
  let engine = Mvpn_sim.Engine.create () in
  let net =
    Network.create
      ~policy:(Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched)
      engine (Backbone.topology bb)
  in
  let l2 = L2vpn.deploy ~net ~backbone:bb in
  let pops = Backbone.pops bb in
  let carried : (int, Frame.t) Hashtbl.t = Hashtbl.create 64 in
  let delivered = ref 0 and de_preserved = ref 0 in
  let collector = Mvpn_qos.Sla.collector () in
  let pw =
    match
      L2vpn.create_pw l2
        ~a:{ L2vpn.pe = pops.(0); on_deliver = (fun _ -> ()) }
        ~b:
          { L2vpn.pe = pops.(3);
            on_deliver =
              (fun p ->
                 incr delivered;
                 Mvpn_qos.Sla.on_receive collector
                   ~now:(Mvpn_sim.Engine.now engine) p;
                 match Hashtbl.find_opt carried p.Mvpn_net.Packet.uid with
                 | Some f -> if f.Frame.de then incr de_preserved
                 | None -> ()) }
    with
    | Ok id -> id
    | Error e -> failwith e
  in
  (* A policed PVC feeding the wire: in-profile clean, excess DE. *)
  let pvc = Pvc.create (Pvc.default_contract ~cir_bps:256_000.0) in
  let offered = ref 0 and policed = ref 0 in
  let emit _ =
    incr offered;
    let now = Mvpn_sim.Engine.now engine in
    let frame = Frame.make ~dlci:100 ~payload:800 in
    match Pvc.police pvc ~now frame with
    | Pvc.Dropped -> incr policed
    | Pvc.Committed | Pvc.Excess ->
      let p =
        Mvpn_net.Packet.make ~size:(Frame.wire_bytes frame) ~now
          (Mvpn_net.Flow.make
             (Mvpn_net.Ipv4.of_octets 192 168 0 1)
             (Mvpn_net.Ipv4.of_octets 192 168 0 2))
      in
      Hashtbl.replace carried p.Mvpn_net.Packet.uid frame;
      Mvpn_qos.Sla.on_send collector ~now ~bytes:p.Mvpn_net.Packet.size;
      L2vpn.send l2 ~pw ~from_a:true p
  in
  (* Offer 2x CIR so policing is visible. *)
  Mvpn_core.Traffic.cbr engine ~start:0.0 ~stop:20.0 ~rate_bps:512_000.0
    ~packet_bytes:800 emit;
  Mvpn_sim.Engine.run engine;
  let r = Mvpn_qos.Sla.report collector in
  let widths = [34; 12] in
  Tables.row widths ["measure"; "value"];
  Tables.rule widths;
  Tables.row widths ["frames offered"; string_of_int !offered];
  Tables.row widths ["policed at the PVC (beyond Bc+Be)"; string_of_int !policed];
  Tables.row widths ["delivered across the backbone"; string_of_int !delivered];
  Tables.row widths
    ["DE-marked frames surviving intact"; string_of_int !de_preserved];
  Tables.row widths ["misordered"; string_of_int (L2vpn.misordered l2 ~pw)];
  Tables.row widths ["mean delay (ms)"; Tables.ms r.Mvpn_qos.Sla.mean_delay];
  Tables.note
    "\nThe FR service contract (CIR policing, DE marking) applies at the\n\
     edge, the MPLS backbone carries the frames on a pseudowire without\n\
     reordering, and the DE bit arrives intact for the far-end switch —\n\
     the existing-service migration path §1 demands ('mechanisms...\n\
     which work over existing deployed backbones')."

let run () =
  contract_parity ();
  congestion_parity ();
  overhead_parity ();
  interworking ()
