module Topology = Mvpn_sim.Topology
module Flow = Mvpn_net.Flow
module Spf = Mvpn_routing.Spf

type tspec = {
  rate_bps : float;
  bucket_bytes : float;
}

type reservation = {
  id : int;
  flow : Flow.t;
  tspec : tspec;
  path : int list;
}

type t = {
  topo : Topology.t;
  reservable_fraction : float;
  (* Per-link promised bandwidth, by link id. *)
  link_reserved : (int, float) Hashtbl.t;
  (* Per-router flow-state count. *)
  router_state : (int, int) Hashtbl.t;
  by_id : (int, reservation) Hashtbl.t;
  by_flow : (Flow.t, int) Hashtbl.t;
  mutable next_id : int;
}

let create ?(reservable_fraction = 0.75) topo =
  if reservable_fraction <= 0.0 || reservable_fraction > 1.0 then
    invalid_arg "Intserv.create: reservable fraction outside (0, 1]";
  { topo; reservable_fraction; link_reserved = Hashtbl.create 64;
    router_state = Hashtbl.create 64; by_id = Hashtbl.create 64;
    by_flow = Hashtbl.create 64; next_id = 1 }

let reserved_on t (l : Topology.link) =
  Option.value ~default:0.0 (Hashtbl.find_opt t.link_reserved l.Topology.id)

let links_of_path t path =
  let rec go acc = function
    | a :: (b :: _ as rest) ->
      (match Topology.find_link t.topo a b with
       | Some l -> go (l :: acc) rest
       | None -> invalid_arg "Intserv: broken path")
    | [_] | [] -> List.rev acc
  in
  go [] path

let bump table key delta =
  let v = Option.value ~default:0 (Hashtbl.find_opt table key) + delta in
  if v <= 0 then Hashtbl.remove table key else Hashtbl.replace table key v

let bump_f table key delta =
  let v =
    Option.value ~default:0.0 (Hashtbl.find_opt table key) +. delta
  in
  if v <= 0.0 then Hashtbl.remove table key
  else Hashtbl.replace table key v

let reserve t ~src ~dst flow tspec =
  if tspec.rate_bps <= 0.0 then Error "tspec rate must be positive"
  else if tspec.bucket_bytes <= 0.0 then Error "tspec bucket must be positive"
  else if Hashtbl.mem t.by_flow flow then Error "flow already reserved"
  else
    match Spf.shortest_path t.topo ~src ~dst with
    | None -> Error "destination unreachable"
    | Some path ->
      let links = links_of_path t path in
      let fits (l : Topology.link) =
        reserved_on t l +. tspec.rate_bps
        <= l.Topology.bandwidth *. t.reservable_fraction
      in
      if not (List.for_all fits links) then
        Error "insufficient reservable capacity on the path"
      else begin
        let id = t.next_id in
        t.next_id <- id + 1;
        List.iter
          (fun (l : Topology.link) ->
             bump_f t.link_reserved l.Topology.id tspec.rate_bps)
          links;
        (* Every router on the path, endpoints included, holds
           classifier + scheduler state for this flow. *)
        List.iter (fun node -> bump t.router_state node 1) path;
        Hashtbl.replace t.by_id id { id; flow; tspec; path };
        Hashtbl.replace t.by_flow flow id;
        Ok id
      end

let release t id =
  match Hashtbl.find_opt t.by_id id with
  | None -> false
  | Some r ->
    List.iter
      (fun (l : Topology.link) ->
         bump_f t.link_reserved l.Topology.id (-.r.tspec.rate_bps))
      (links_of_path t r.path);
    List.iter (fun node -> bump t.router_state node (-1)) r.path;
    Hashtbl.remove t.by_id id;
    Hashtbl.remove t.by_flow r.flow;
    true

let reservation_count t = Hashtbl.length t.by_id

let flow_state_at t node =
  Option.value ~default:0 (Hashtbl.find_opt t.router_state node)

let total_flow_state t =
  Hashtbl.fold (fun _ v acc -> acc + v) t.router_state 0

let path_of t id =
  Option.map (fun r -> r.path) (Hashtbl.find_opt t.by_id id)
