(** Shortest-path-first computations over a {!Mvpn_sim.Topology}.

    These are the pure graph algorithms under both the link-state
    protocol (plain SPF on IGP costs — the routing the paper says cannot
    see resource usage, §2.2) and the constraint-based routing that can
    (CSPF filters links by available bandwidth before running the same
    SPF). *)

type tree = {
  src : int;
  dist : float array;  (** [infinity] for unreachable nodes *)
  first_hop : int array;  (** next hop from [src] toward each node; -1 if none *)
  parent : int array;  (** predecessor on the shortest path; -1 at/unreachable *)
}

val dijkstra :
  ?usable:(Mvpn_sim.Topology.link -> bool) ->
  ?metric:(Mvpn_sim.Topology.link -> float) ->
  Mvpn_sim.Topology.t -> src:int -> tree
(** Shortest-path tree from [src]. [usable] defaults to the link being
    up; [metric] defaults to the link's IGP [cost]. Ties broken toward
    lower node ids, deterministically. *)

val path_of_tree : tree -> int -> int list option
(** [path_of_tree tree dst] is the node sequence src..dst, or [None] if
    unreachable. *)

val shortest_path :
  ?usable:(Mvpn_sim.Topology.link -> bool) ->
  ?metric:(Mvpn_sim.Topology.link -> float) ->
  Mvpn_sim.Topology.t -> src:int -> dst:int -> int list option
(** One-shot shortest path. *)

val widest_path :
  Mvpn_sim.Topology.t -> src:int -> dst:int -> (int list * float) option
(** Path maximizing the minimum available (unreserved) bandwidth along
    it, with the bottleneck value. Only considers links that are up. *)

val k_shortest :
  ?k:int ->
  ?usable:(Mvpn_sim.Topology.link -> bool) ->
  Mvpn_sim.Topology.t -> src:int -> dst:int -> int list list
(** Yen's algorithm: up to [k] (default 3) loop-free shortest paths in
    non-decreasing cost order. *)

val path_cost :
  ?metric:(Mvpn_sim.Topology.link -> float) ->
  Mvpn_sim.Topology.t -> int list -> float option
(** Total metric of a node path; [None] if some hop has no link. *)
