let outer_ip_bytes = 20

let esp_header_bytes = 8

let iv_bytes = function
  | Crypto.Null -> 0
  | Crypto.Des | Crypto.Des3 -> 8

let trailer_bytes = 2

let auth_bytes = 12

let block_size = function
  | Crypto.Null -> 1
  | Crypto.Des | Crypto.Des3 -> 8

let pad_bytes cipher ~payload =
  let block = block_size cipher in
  let body = payload + trailer_bytes in
  (block - (body mod block)) mod block

let overhead cipher ~payload =
  outer_ip_bytes + esp_header_bytes + iv_bytes cipher
  + pad_bytes cipher ~payload + trailer_bytes + auth_bytes
