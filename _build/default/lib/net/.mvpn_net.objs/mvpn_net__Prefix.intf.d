lib/net/prefix.mli: Format Ipv4
