type shim = { label : int; mutable exp : int; mutable ttl : int }

type header = {
  mutable src : Ipv4.t;
  mutable dst : Ipv4.t;
  mutable proto : Flow.proto;
  mutable src_port : int;
  mutable dst_port : int;
  mutable dscp : Dscp.t;
  mutable ttl : int;
}

type t = {
  uid : int;
  flow : Flow.t;
  vpn : int option;
  seq : int;
  created_at : float;
  mutable size : int;
  inner : header;
  mutable encrypted : bool;
  mutable outer : header option;
  mutable labels : shim list;
  mutable encap_bytes : int;
}

let default_ttl = 64

(* Atomic so packet construction is safe from any domain. Uids stay
   unique process-wide but their allocation order across domains is not
   deterministic — nothing semantic may depend on uid values beyond
   uniqueness (per-packet fault verdicts key on uid, which is why
   seeded chaos runs are single-domain). *)
let uid_counter = Atomic.make 0

let reset_uid_counter () = Atomic.set uid_counter 0

let next_uid () = 1 + Atomic.fetch_and_add uid_counter 1

let header_of_flow ?(dscp = Dscp.best_effort) (flow : Flow.t) =
  { src = flow.src; dst = flow.dst; proto = flow.proto;
    src_port = flow.src_port; dst_port = flow.dst_port; dscp;
    ttl = default_ttl }

let make ?vpn ?(seq = 0) ?(dscp = Dscp.best_effort) ?(size = 512) ~now flow =
  { uid = next_uid (); flow; vpn; seq; created_at = now; size;
    inner = header_of_flow ~dscp flow; encrypted = false; outer = None;
    labels = []; encap_bytes = 0 }

let copy_header (h : header) =
  { src = h.src; dst = h.dst; proto = h.proto; src_port = h.src_port;
    dst_port = h.dst_port; dscp = h.dscp; ttl = h.ttl }

let copy p =
  { uid = next_uid (); flow = p.flow; vpn = p.vpn; seq = p.seq;
    created_at = p.created_at; size = p.size;
    inner = copy_header p.inner; encrypted = p.encrypted;
    outer = Option.map copy_header p.outer;
    labels =
      List.map (fun s -> { label = s.label; exp = s.exp; ttl = s.ttl })
        p.labels;
    encap_bytes = p.encap_bytes }

let visible_header p =
  match p.outer with Some h -> h | None -> p.inner

let visible_dscp p = (visible_header p).dscp

let classifiable_flow p =
  match p.outer with
  | None ->
    Some
      { Flow.src = p.inner.src; dst = p.inner.dst; proto = p.inner.proto;
        src_port = p.inner.src_port; dst_port = p.inner.dst_port }
  | Some h ->
    if p.encrypted then None
    else
      Some
        { Flow.src = h.src; dst = h.dst; proto = h.proto;
          src_port = h.src_port; dst_port = h.dst_port }

let top_label p =
  match p.labels with [] -> None | shim :: _ -> Some shim

let top_exp p =
  match p.labels with [] -> None | shim :: _ -> Some shim.exp

let shim_bytes = 4

let push_label p ~label ~exp ~ttl =
  p.labels <- { label; exp; ttl } :: p.labels;
  p.size <- p.size + shim_bytes

let pop_label p =
  match p.labels with
  | [] -> None
  | shim :: rest ->
    p.labels <- rest;
    p.size <- p.size - shim_bytes;
    Some shim

let swap_label p ~label =
  match p.labels with
  | [] -> invalid_arg "Packet.swap_label: empty label stack"
  | shim :: rest ->
    p.labels <- { label; exp = shim.exp; ttl = shim.ttl - 1 } :: rest

let encapsulate p ~src ~dst ~proto ~overhead ~copy_tos =
  match p.outer with
  | Some _ -> invalid_arg "Packet.encapsulate: already encapsulated"
  | None ->
    let dscp = if copy_tos then p.inner.dscp else Dscp.best_effort in
    p.outer <-
      Some
        { src; dst; proto; src_port = 0; dst_port = 0; dscp;
          ttl = default_ttl };
    p.size <- p.size + overhead;
    p.encap_bytes <- overhead

let decapsulate p =
  match p.outer with
  | None -> invalid_arg "Packet.decapsulate: no outer header"
  | Some _ ->
    p.outer <- None;
    p.encrypted <- false;
    p.size <- p.size - p.encap_bytes;
    p.encap_bytes <- 0

let pp ppf p =
  let labels =
    match p.labels with
    | [] -> ""
    | shims ->
      let shim_str s = Printf.sprintf "%d(exp=%d)" s.label s.exp in
      Printf.sprintf " [%s]" (String.concat ";" (List.map shim_str shims))
  in
  Format.fprintf ppf "#%d %a -> %a %a %dB%s%s" p.uid Ipv4.pp p.inner.src
    Ipv4.pp p.inner.dst Dscp.pp (visible_dscp p) p.size labels
    (if p.encrypted then " enc" else "")
