(** Workload generation and measurement wiring.

    A {!registry} maps flows to SLA collectors: traffic sources record
    each send, CE sinks record each delivery, and the experiment reads
    per-class reports at the end. Generators cover the paper's
    motivating application mix: constant-rate and on/off voice
    (EF), Poisson transactional traffic (AF), and Pareto-bursty bulk
    transfer (best effort). All randomness comes from explicit
    generators, so runs are reproducible. *)

type registry

val registry : Mvpn_sim.Engine.t -> registry

val sink : registry -> Mvpn_net.Packet.t -> unit
(** Install as the CE/site local-delivery handler: looks up the
    packet's flow and records the delivery; unknown flows are ignored. *)

val register_flow : registry -> Mvpn_net.Flow.t -> Mvpn_qos.Sla.collector -> unit

val collector : registry -> string -> Mvpn_qos.Sla.collector
(** Named collector, created on first use — one per traffic class. *)

val report : registry -> string -> Mvpn_qos.Sla.report
(** Report of a named collector (empty report if never created). *)

val labels : registry -> string list

type emit = int -> unit
(** Emit one packet of the given size, stamped with the current time. *)

val sender :
  registry -> net:Network.t -> src_node:int -> flow:Mvpn_net.Flow.t ->
  dscp:Mvpn_net.Dscp.t -> ?vpn:int -> ?cbq:Mvpn_qos.Cbq.t ->
  collector:Mvpn_qos.Sla.collector -> unit -> emit
(** A source: builds sequenced packets for [flow], marks them ([dscp]
    directly, or through [cbq] which may remark or police them), records
    the send with [collector], registers the flow for sink-side
    measurement, and injects at [src_node]. CBQ-policed packets count as
    sent but are never injected (they appear as loss — policed at the
    customer premises). *)

(** {2 Arrival processes} — each schedules [emit] calls on the engine
    between [start] and [stop] (both in seconds). *)

val cbr :
  Mvpn_sim.Engine.t -> start:float -> stop:float -> rate_bps:float ->
  packet_bytes:int -> emit -> unit

val poisson :
  Mvpn_sim.Engine.t -> Mvpn_sim.Rng.t -> start:float -> stop:float ->
  rate_pps:float -> packet_bytes:int -> emit -> unit

val onoff :
  Mvpn_sim.Engine.t -> Mvpn_sim.Rng.t -> start:float -> stop:float ->
  on_mean:float -> off_mean:float -> rate_bps:float -> packet_bytes:int ->
  emit -> unit
(** Exponential talkspurt/silence alternation; CBR at [rate_bps] while
    on — the standard voice model. *)

val pareto_bursts :
  Mvpn_sim.Engine.t -> Mvpn_sim.Rng.t -> start:float -> stop:float ->
  burst_rate:float -> mean_burst_bytes:float -> ?shape:float ->
  ?mtu:int -> emit -> unit
(** Poisson burst arrivals; each burst is a Pareto-sized transfer
    (default shape 1.5) emitted as back-to-back MTU packets (default
    1500) — self-similar bulk data. *)
