lib/qos/port.ml: Mvpn_net Mvpn_sim Queue_disc
