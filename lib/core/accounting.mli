(** Usage accounting and class-based billing.

    §2.2's objection to per-flow QoS is partly commercial: selectable
    QoS "would probably require special billing for high QoS level
    selected", which carriers found unmanageable per flow. The
    class-per-VPN model makes it tractable: meter each VPN's usage per
    service class and price the classes differently. This module is
    that meter — it observes delivered packets (wire it into CE sinks)
    and renders per-VPN invoices.

    Accounting is measurement-plane: it never influences forwarding. *)

type t

val create : unit -> t

val observe : t -> Mvpn_net.Packet.t -> unit
(** Record one delivered packet against (its VPN, its marked class
    band). Packets without a VPN tag are accounted to VPN 0. Running
    totals are mirrored into registry gauges
    [acct.vpn<N>.band<B>.{packets,bytes}] (when telemetry is enabled),
    so {!usage} and [mvpn stats] show the same numbers. *)

val sink : t -> (Mvpn_net.Packet.t -> unit) -> Mvpn_net.Packet.t -> unit
(** [sink t inner] wraps an existing local-delivery sink with
    accounting. *)

type usage = {
  vpn : int;
  band : int;  (** {!Qos_mapping} band: 0=EF … 3=BE *)
  packets : int;
  bytes : int;
}

val usage : t -> usage list
(** All non-zero usage records, sorted by (vpn, band). *)

(** Price per gigabyte per class band. *)
type tariff = { per_gb : float array }

val default_tariff : tariff
(** EF 8.0, AF-hi 4.0, AF-lo 2.0, BE 0.5 (currency units per GB) —
    premium classes priced at the multiples the SLA machinery makes
    defensible. *)

val invoice : ?tariff:tariff -> t -> vpn:int -> (usage * float) list * float
(** Line items with their cost and the total, for one customer. *)

val pp_invoice : ?tariff:tariff -> Format.formatter -> t -> vpn:int -> unit
