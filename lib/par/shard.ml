module Engine = Mvpn_sim.Engine
module Topology = Mvpn_sim.Topology
module Registry = Mvpn_telemetry.Registry
module Scenario = Mvpn_core.Scenario
module Network = Mvpn_core.Network
module Site = Mvpn_core.Site
module Port = Mvpn_qos.Port

type fate = {
  f_time : float;
  f_vpn : int;
  f_band : int;
  f_dropped : bool;
  f_latency : float;
  f_seq : int;
}

type result = {
  r_id : int;
  r_snapshot : Registry.snapshot;
  r_fates : fate list;
  r_leftover : Exchange.msg list;
  r_sent : int;
  r_ingested : int;
  r_scenario : Scenario.t;
}

type t = {
  sid : int;
  sc : Scenario.t;
  net : Network.t;
  eng : Engine.t;
  exchange : Exchange.t;
  mutable pending : Exchange.msg list;  (* sorted by [msg_order] *)
  mutable fates : fate list;  (* newest first *)
  mutable fseq : int;
  mutable sent : int;
  mutable ingested : int;
}

let msg_order (a : Exchange.msg) (b : Exchange.msg) =
  match Float.compare a.Exchange.arrival b.Exchange.arrival with
  | 0 ->
    (match Float.compare a.Exchange.sent b.Exchange.sent with
     | 0 ->
       (match Int.compare a.Exchange.src_shard b.Exchange.src_shard with
        | 0 -> Int.compare a.Exchange.seq b.Exchange.seq
        | c -> c)
     | c -> c)
  | c -> c

let create ~id ~part ~exchange ~build ?prepare ~arm () =
  let sc = build () in
  (* Every replica's build bumps this domain's metric cells; only the
     canonical replica keeps them, so deploy-time counters appear
     exactly once in the merged snapshot. [Registry.reset] only zeroes
     the calling domain's cells — concurrent builds are unaffected. *)
  if id > 0 then Registry.reset ();
  (* After the reset, so whatever [prepare] arms (e.g. the timeline
     sampler's tick events) is accounted in every shard's kept cells,
     exactly as the sequential runner accounts its own. *)
  let tap = match prepare with None -> None | Some p -> p sc in
  let net = Scenario.network sc in
  let eng = Scenario.engine sc in
  let t =
    { sid = id; sc; net; eng; exchange; pending = []; fates = []; fseq = 0;
      sent = 0; ingested = 0 }
  in
  Network.set_fate_hook net
    (Some
       (fun ~time ~vpn ~band ~dropped ~latency ->
          (match tap with
           | Some f -> f ~time ~vpn ~band ~dropped ~latency
           | None -> ());
          let f =
            { f_time = time; f_vpn = vpn; f_band = band;
              f_dropped = dropped; f_latency = latency; f_seq = t.fseq }
          in
          t.fseq <- t.fseq + 1;
          t.fates <- f :: t.fates));
  (* Outbound cut ports hand finished transmissions to the exchange
     instead of scheduling the propagation event locally. *)
  let owner = part.Partition.owner in
  List.iter
    (fun (l : Topology.link) ->
       if owner.(l.Topology.src) = id then begin
         let dst_shard = owner.(l.Topology.dst) in
         let src_node = l.Topology.src and dst_node = l.Topology.dst in
         Port.set_handoff
           (Network.port net ~link_id:l.Topology.id)
           (Some
              (fun ~arrival packet ->
                 t.sent <- t.sent + 1;
                 Network.note_export net;
                 Exchange.send exchange ~src:id ~dst:dst_shard ~arrival
                   ~sent:(Engine.now eng) ~src_node ~dst_node packet))
       end)
    part.Partition.cut;
  (* Arm sources only for pairs whose sending CE this shard owns. The
     workload still performs every RNG draw for filtered pairs, so each
     armed pair's substream is byte-identical to the sequential run. *)
  arm sc ~only:(fun (a : Site.t) _ -> owner.(a.Site.ce_node) = id);
  t

let id t = t.sid

let engine t = t.eng

let ingest t ~bound ~inclusive =
  let fresh = Exchange.drain t.exchange ~dst:t.sid in
  if fresh <> [] then
    t.pending <- List.merge msg_order t.pending (List.sort msg_order fresh);
  let ready (m : Exchange.msg) =
    if inclusive then m.Exchange.arrival <= bound
    else m.Exchange.arrival < bound
  in
  let rec take = function
    | m :: rest when ready m ->
      t.ingested <- t.ingested + 1;
      let arrival = m.Exchange.arrival in
      let dst = m.Exchange.dst_node and src = m.Exchange.src_node in
      let packet = m.Exchange.packet in
      Engine.schedule_at t.eng ~time:arrival (fun () ->
          Network.note_import t.net;
          Network.receive t.net dst ~from:(Some src) packet);
      take rest
    | rest -> t.pending <- rest
  in
  take t.pending

let run_before t ~before = Engine.run_before t.eng ~before

let run_to t ~until = Engine.run ~until t.eng

let peek t = Engine.peek_time t.eng

let collect t =
  { r_id = t.sid;
    r_snapshot = Registry.snapshot ();
    r_fates = List.rev t.fates;
    r_leftover = t.pending;
    r_sent = t.sent;
    r_ingested = t.ingested;
    r_scenario = t.sc }
