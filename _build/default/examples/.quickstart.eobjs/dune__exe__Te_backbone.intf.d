examples/te_backbone.mli:
