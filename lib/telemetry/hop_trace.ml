(* Fixed-capacity ring of per-packet hop events keyed on the packet uid.
   Recording overwrites the oldest entry; reading scans the ring (it is
   a debugging/forensics surface, not a hot path). *)

type event = { uid : int; time : float; node : int; label : string }

let dummy = { uid = -1; time = 0.0; node = -1; label = "" }

type t = {
  data : event array;
  mutable pos : int;  (* next slot to overwrite *)
  mutable recorded : int;  (* total ever recorded *)
}

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Hop_trace.create: capacity must be positive";
  { data = Array.make capacity dummy; pos = 0; recorded = 0 }

let capacity t = Array.length t.data

let recorded t = t.recorded

let record t ~uid ~time ~node label =
  if !Control.enabled then begin
    t.data.(t.pos) <- { uid; time; node; label };
    t.pos <- (t.pos + 1) mod Array.length t.data;
    t.recorded <- t.recorded + 1
  end

(* Oldest-first fold over live entries. *)
let fold f t init =
  let cap = Array.length t.data in
  let live = min t.recorded cap in
  let start = (t.pos - live + cap) mod cap in
  let acc = ref init in
  for i = 0 to live - 1 do
    acc := f !acc t.data.((start + i) mod cap)
  done;
  !acc

let trace t ~uid =
  List.rev (fold (fun acc e -> if e.uid = uid then e :: acc else acc) t [])

let recent t n =
  let all = List.rev (fold (fun acc e -> e :: acc) t []) in
  let live = List.length all in
  if live <= n then all
  else List.filteri (fun i _ -> i >= live - n) all

let clear t =
  Array.fill t.data 0 (Array.length t.data) dummy;
  t.pos <- 0;
  t.recorded <- 0

let pp_event ppf e =
  Format.fprintf ppf "%.6f uid=%d node=%d %s" e.time e.uid e.node e.label
