(** Path-compressed binary trie (Patricia trie) keyed by CIDR prefixes.

    This is the longest-prefix-match structure a conventional IP router
    consults for every packet — the per-packet work the paper contrasts
    with MPLS label swapping ("the less time devices spend inspecting
    traffic, the more time they have to forward it", §3). The E0
    microbenchmark measures exactly this lookup against
    {!Mvpn_mpls.Lfib} label indexing.

    The trie is mutable; it is a building block for FIBs, VRFs and the
    link-state RIBs, all of which update in place as protocols converge. *)

type 'a t
(** A mutable prefix trie with values of type ['a]. *)

val create : unit -> 'a t

val is_empty : 'a t -> bool

val cardinal : 'a t -> int
(** Number of bound prefixes. *)

val generation : 'a t -> int
(** Monotonic mutation counter: bumped by every {!add}, successful
    {!remove} and {!clear}. Two equal generations guarantee the trie
    contents have not changed in between, so lookup caches compare
    generations instead of invalidating eagerly. *)

val add : 'a t -> Prefix.t -> 'a -> unit
(** [add t p v] binds [p] to [v], replacing any previous binding of [p]. *)

val find : 'a t -> Prefix.t -> 'a option
(** Exact-match lookup. *)

val remove : 'a t -> Prefix.t -> bool
(** [remove t p] removes the exact binding of [p]; [true] if it existed. *)

val lookup : 'a t -> Ipv4.t -> (Prefix.t * 'a) option
(** [lookup t a] is the longest-prefix match for address [a]. *)

val lookup_value : 'a t -> Ipv4.t -> 'a option
(** [lookup_value t a] is [Option.map snd (lookup t a)]. *)

val iter : (Prefix.t -> 'a -> unit) -> 'a t -> unit
(** Iterates bindings in increasing (network, length) order. *)

val fold : (Prefix.t -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
(** Folds bindings in increasing (network, length) order. *)

val to_list : 'a t -> (Prefix.t * 'a) list
(** Bindings in increasing (network, length) order. *)

val of_list : (Prefix.t * 'a) list -> 'a t

val clear : 'a t -> unit
(** Remove every binding. *)
