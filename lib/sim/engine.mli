(** Discrete-event simulation engine.

    Time is a [float] in seconds. Events are thunks scheduled at absolute
    or relative times; the engine pops them in time order (FIFO among
    simultaneous events) and runs them, each of which may schedule more.
    All network behaviour — transmission, propagation, queue service,
    protocol timers — is expressed as events over one engine. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time, in seconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule e ~delay f] runs [f] at [now e +. delay].
    @raise Invalid_argument if [delay] is negative or not finite. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** [schedule_at e ~time f] runs [f] at absolute [time].
    @raise Invalid_argument if [time] is in the past or not finite. *)

val run : ?until:float -> t -> unit
(** Drain the event queue. With [until], stop once the next event would
    be strictly after [until] and advance the clock to [until]. Events
    scheduled exactly at [until] do run. *)

val step : t -> bool
(** Run exactly one event; [false] when the queue is empty. *)

val peek_time : t -> float option
(** Timestamp of the next pending event, without running it. *)

val run_before : t -> before:float -> unit
(** Process every pending event with time strictly below [before],
    leaving events at or after [before] queued and [now] at the last
    processed event. The conservative parallel runner uses this to
    advance a shard through a safe window without claiming the window
    bound itself. *)

val pending : t -> int
(** Number of scheduled events not yet run. *)

val processed : t -> int
(** Number of events run since creation. *)

val stop : t -> unit
(** Make the current {!run} return after the event in progress; pending
    events stay queued. *)
