(* Ablations for the design choices DESIGN.md §5 calls out:
   A1 scheduler family for the EF band;
   A2 WRED on/off for the AF classes;
   A3 penultimate-hop popping on/off;
   A4 RFC 2547 shared PE-PE LSPs + VPN label vs a per-site-pair LSP
      mesh (state comparison). *)

open Mvpn_core
module Engine = Mvpn_sim.Engine
module Topology = Mvpn_sim.Topology
module Prefix = Mvpn_net.Prefix
module Ipv4 = Mvpn_net.Ipv4
module Sla = Mvpn_qos.Sla
module Queue_disc = Mvpn_qos.Queue_disc
module Ldp = Mvpn_mpls.Ldp
module Plane = Mvpn_mpls.Plane
module Spf = Mvpn_routing.Spf

(* --- A1: scheduler family ---------------------------------------------- *)

let scheds =
  [ ("wfq 8:4:2:1", Qos_mapping.default_diffserv_sched);
    ("strict", Queue_disc.Strict);
    ("drr 8:4:2:1", Queue_disc.Drr [| 12_000; 6_000; 3_000; 1_500 |]);
    ("wrr 8:4:2:1", Queue_disc.Wrr [| 8; 4; 2; 1 |]) ]

let a1_cell sched ~wred =
  let sc =
    Scenario.build ~pops:8 ~vpns:1 ~sites_per_vpn:4 ~wred
      (Scenario.Mpls_deployment
         { policy = Qos_mapping.Diffserv sched; use_te = false })
  in
  let pairs =
    [ (Scenario.site sc ~vpn:1 ~idx:0, Scenario.site sc ~vpn:1 ~idx:1);
      (Scenario.site sc ~vpn:1 ~idx:2, Scenario.site sc ~vpn:1 ~idx:3) ]
  in
  Scenario.add_mixed_workload ~load:1.2 sc ~pairs ~duration:20.0;
  Scenario.run sc ~duration:25.0;
  Scenario.class_reports sc

let report_of cls reports =
  try List.assoc cls reports with Not_found -> Sla.report (Sla.collector ())

(* A misbehaving EF source (unpoliced, at full access rate) exposes the
   starvation difference between the schedulers: traffic crosses a
   single 2 Mb/s link with 2.2 Mb/s of EF flood plus 1 Mb/s of bulk. *)
let a1_starvation sched =
  let topo = Topology.create () in
  let ids = Topology.line topo 2 ~bandwidth:2e6 ~delay:0.001 in
  let engine = Engine.create () in
  let net =
    Network.create ~policy:(Qos_mapping.Diffserv sched) engine topo
  in
  Mvpn_net.Fib.add (Network.fib net ids.(0)) Prefix.default
    { Mvpn_net.Fib.next_hop = ids.(1); cost = 1; source = Mvpn_net.Fib.Static };
  Mvpn_net.Fib.add (Network.fib net ids.(1)) Prefix.default
    { Mvpn_net.Fib.next_hop = Mvpn_net.Fib.local_delivery; cost = 0;
      source = Mvpn_net.Fib.Connected };
  let registry = Traffic.registry engine in
  Network.set_sink net ids.(1) (Traffic.sink registry);
  let mk label dscp port rate =
    let emit =
      Traffic.sender registry ~net ~src_node:ids.(0)
        ~flow:(Mvpn_net.Flow.make ~proto:Mvpn_net.Flow.Udp ~dst_port:port
                 (Ipv4.of_string_exn "10.0.0.1")
                 (Ipv4.of_string_exn "10.1.0.1"))
        ~dscp
        ~collector:(Traffic.collector registry label)
        ()
    in
    Traffic.cbr engine ~start:0.0 ~stop:20.0 ~rate_bps:rate
      ~packet_bytes:1000 emit
  in
  mk "flood" Mvpn_net.Dscp.ef 5060 2_200_000.0;
  mk "victim" Mvpn_net.Dscp.best_effort 20 1_000_000.0;
  Engine.run engine;
  ( Traffic.report registry "flood",
    Traffic.report registry "victim" )

let a1 () =
  Tables.heading "A1a: EF scheduler family at offered load 120% (policed EF)";
  let widths = [14; 11; 11; 10; 10; 10] in
  Tables.row widths
    ["scheduler"; "voice mean"; "voice p99"; "voice loss"; "bulk loss";
     "bulk tput"];
  Tables.rule widths;
  List.iter
    (fun (name, sched) ->
       let reports = a1_cell sched ~wred:true in
       let v = report_of "voice" reports in
       let b = report_of "bulk" reports in
       Tables.row widths
         [ name; Tables.ms v.Sla.mean_delay; Tables.ms v.Sla.p99_delay;
           Tables.pct v.Sla.loss; Tables.pct b.Sla.loss;
           Tables.mbps b.Sla.throughput_bps ])
    scheds;
  Tables.note
    "\nWith EF policed at the CPE the schedulers are nearly\n\
     interchangeable — the paper's LLQ-style deployment is safe.";
  Tables.heading "A1b: misbehaving (unpoliced) EF flood at 110% of the link";
  let widths = [14; 13; 13; 13] in
  Tables.row widths
    ["scheduler"; "flood tput"; "victim tput"; "victim loss"];
  Tables.rule widths;
  List.iter
    (fun (name, sched) ->
       let flood, victim = a1_starvation sched in
       Tables.row widths
         [ name; Tables.mbps flood.Sla.throughput_bps;
           Tables.mbps victim.Sla.throughput_bps;
           Tables.pct victim.Sla.loss ])
    scheds;
  Tables.note
    "\nStrict priority lets an unpoliced EF flood starve everyone else\n\
     (victim throughput ~0); the weighted schedulers cap the damage at\n\
     the EF band's configured share. This is why the architecture pairs\n\
     the EF PHB with CPE policing (E6's CBQ) — the two are a unit."

(* --- A2: WRED ----------------------------------------------------------- *)

(* Overload one AF band with in-profile (AF31) and out-of-profile
   (AF33) traffic and see who WRED sacrifices. *)
let a2_cell ~wred =
  let topo = Topology.create () in
  let ids = Topology.line topo 2 ~bandwidth:2e6 ~delay:0.001 in
  let engine = Engine.create () in
  let net =
    Network.create
      ~policy:(Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched)
      ~wred engine topo
  in
  Mvpn_net.Fib.add (Network.fib net ids.(0)) Prefix.default
    { Mvpn_net.Fib.next_hop = ids.(1); cost = 1; source = Mvpn_net.Fib.Static };
  Mvpn_net.Fib.add (Network.fib net ids.(1)) Prefix.default
    { Mvpn_net.Fib.next_hop = Mvpn_net.Fib.local_delivery; cost = 0;
      source = Mvpn_net.Fib.Connected };
  let registry = Traffic.registry engine in
  Network.set_sink net ids.(1) (Traffic.sink registry);
  let rng = Mvpn_sim.Rng.create 4242 in
  let mk label dscp port rate =
    let emit =
      Traffic.sender registry ~net ~src_node:ids.(0)
        ~flow:(Mvpn_net.Flow.make ~proto:Mvpn_net.Flow.Udp ~dst_port:port
                 (Ipv4.of_string_exn "10.0.0.1")
                 (Ipv4.of_string_exn "10.1.0.1"))
        ~dscp
        ~collector:(Traffic.collector registry label)
        ()
    in
    (* Poisson so the two colours interleave randomly — tail drop's
       colour-blindness only shows without phase locking. *)
    Traffic.poisson engine (Mvpn_sim.Rng.fork rng) ~start:0.0 ~stop:30.0
      ~rate_pps:(rate /. 8000.0) ~packet_bytes:1000 emit
  in
  (* 2.6 Mb/s of AF3x into a 2 Mb/s link: the band must shed 25%. *)
  mk "af31" (Mvpn_net.Dscp.af 3 1) 1433 1_300_000.0;
  mk "af33" (Mvpn_net.Dscp.af 3 3) 1434 1_300_000.0;
  Engine.run engine;
  (Traffic.report registry "af31", Traffic.report registry "af33")

let a2 () =
  Tables.heading
    "A2: WRED drop-precedence awareness (AF band overloaded 130%)";
  let widths = [8; 12; 12; 12; 12] in
  Tables.row widths
    ["wred"; "af31 loss"; "af33 loss"; "af31 p99"; "af33 p99"];
  Tables.rule widths;
  List.iter
    (fun wred ->
       let in_profile, out_profile = a2_cell ~wred in
       Tables.row widths
         [ string_of_bool wred;
           Tables.pct in_profile.Sla.loss;
           Tables.pct out_profile.Sla.loss;
           Tables.ms in_profile.Sla.p99_delay;
           Tables.ms out_profile.Sla.p99_delay ])
    [true; false];
  Tables.note
    "\nWith WRED the out-of-profile colour (AF33, drop precedence 3)\n\
     absorbs most of the shedding and in-profile AF31 survives — the\n\
     contract the CPE remarking of E6 relies on. Without WRED the tail\n\
     drop is colour-blind: both colours lose roughly equally and the\n\
     queue runs full (higher p99)."

(* --- A3: penultimate-hop popping ---------------------------------------- *)

let a3 () =
  Tables.heading "A3: penultimate-hop popping";
  let bb = Backbone.build ~pops:12 () in
  let topo = Backbone.topology bb in
  let fecs =
    Array.to_list
      (Array.mapi (fun pop node -> (Backbone.loopback bb ~pop, node))
         (Backbone.pops bb))
  in
  let state php =
    let plane = Plane.create ~nodes:(Topology.node_count topo) in
    let ldp = Ldp.distribute ~php topo plane ~fecs in
    ignore ldp;
    let egress_entries =
      Array.fold_left
        (fun acc node ->
           acc + Mvpn_mpls.Lfib.size (Plane.lfib plane node))
        0 (Backbone.pops bb)
    in
    (Plane.total_lfib_entries plane, egress_entries,
     Plane.total_labels_allocated plane)
  in
  let widths = [8; 14; 16; 14] in
  Tables.row widths ["php"; "lfib entries"; "egress entries"; "labels"];
  Tables.rule widths;
  List.iter
    (fun php ->
       let total, egress, labels = state php in
       Tables.row widths
         [ string_of_bool php; string_of_int total; string_of_int egress;
           string_of_int labels ])
    [true; false];
  Tables.note
    "\nWith PHP the egress advertises implicit-null: one less label\n\
     binding and LFIB entry per FEC, and — more importantly — the\n\
     egress PE does a single (VPN label) lookup per packet instead of\n\
     two."

(* --- A4: shared PE-PE LSPs vs per-site-pair LSPs ------------------------- *)

let a4 () =
  Tables.heading
    "A4: RFC 2547 shared transport LSPs vs a per-site-pair LSP mesh";
  let widths = [6; 16; 16; 18] in
  Tables.row widths
    ["N"; "2547 lfib state"; "2547 labels"; "per-pair LSP labels"];
  Tables.rule widths;
  List.iter
    (fun n ->
       let bb = Backbone.build ~pops:12 () in
       let sites =
         List.init n (fun i ->
             Backbone.attach_site bb ~id:i ~name:(Printf.sprintf "s%d" i)
               ~vpn:1
               ~prefix:(Prefix.make
                          (Ipv4.of_octets 10 (i lsr 8) (i land 0xFF) 0) 24)
               ~pop:(i mod 12))
       in
       let engine = Engine.create () in
       let net = Network.create engine (Backbone.topology bb) in
       let m = Mpls_vpn.deploy ~net ~backbone:bb ~sites () in
       let metrics = Mpls_vpn.metrics m in
       (* Per-pair design point: one LSP per ordered site pair, one
          label per hop of its PE-PE shortest path. *)
       let topo = Backbone.topology bb in
       let per_pair =
         List.fold_left
           (fun acc (a : Site.t) ->
              List.fold_left
                (fun acc (b : Site.t) ->
                   if a.Site.id = b.Site.id then acc
                   else
                     match
                       Spf.shortest_path topo ~src:a.Site.pe_node
                         ~dst:b.Site.pe_node
                     with
                     | Some path -> acc + List.length path - 1
                     | None -> acc)
                acc sites)
           0 sites
       in
       Tables.row widths
         [ string_of_int n;
           string_of_int metrics.Mpls_vpn.lfib_entries;
           string_of_int metrics.Mpls_vpn.labels_allocated;
           string_of_int per_pair ])
    [10; 50; 100];
  Tables.note
    "\nThe 2547 design shares one transport LSP per PE pair across all\n\
     VPNs and distinguishes customers with the BGP-piggybacked VPN\n\
     label: its label state is flat in N. A per-site-pair LSP mesh\n\
     (the 'LSPs created to connect all members' reading of §4.3 taken\n\
     literally) re-creates the overlay's quadratic state in the core."

(* --- A5: DiffServ-aware TE sub-pool -------------------------------------- *)

let a5 () =
  Tables.heading "A5: DS-TE premium sub-pool (12-POP ring, 45 Mb/s links)";
  let run_mode ~subpool =
    let bb = Backbone.build ~pops:12 () in
    let topo = Backbone.topology bb in
    let plane =
      Mvpn_mpls.Plane.create ~nodes:(Topology.node_count topo)
    in
    let te =
      Mvpn_mpls.Rsvp_te.create ~subpool_fraction:0.4 topo plane
    in
    let pops = Backbone.pops bb in
    let class_type =
      if subpool then Mvpn_mpls.Rsvp_te.Subpool
      else Mvpn_mpls.Rsvp_te.Global_pool
    in
    let accepted = ref 0 in
    (* Ten 8 Mb/s premium demands between the same POP pair. *)
    for _ = 1 to 10 do
      match
        Mvpn_mpls.Rsvp_te.signal te ~class_type ~src:pops.(0) ~dst:pops.(6)
          ~bandwidth:8e6
      with
      | Ok _ -> incr accepted
      | Error _ -> ()
    done;
    let max_premium_share =
      List.fold_left
        (fun acc (l : Topology.link) ->
           Float.max acc
             (Mvpn_mpls.Rsvp_te.subpool_reserved te l /. l.Topology.bandwidth))
        0.0 (Topology.links topo)
    in
    let max_total =
      List.fold_left
        (fun acc l ->
           Float.max acc (Mvpn_mpls.Rsvp_te.reserved_fraction te l))
        0.0 (Topology.links topo)
    in
    (!accepted, max_premium_share, max_total)
  in
  let widths = [12; 10; 18; 14] in
  Tables.row widths
    ["mode"; "accepted"; "max EF share/link"; "max link load"];
  Tables.rule widths;
  List.iter
    (fun (name, subpool) ->
       let accepted, ef_share, total = run_mode ~subpool in
       Tables.row widths
         [ name; string_of_int accepted;
           (if subpool then Tables.pct ef_share else "untracked");
           Tables.pct total ])
    [("global pool", false); ("ds-te 40%", true)];
  Tables.note
    "\nWithout the sub-pool, EF tunnels can fill a link to 100%% and the\n\
     EF delay bound dies of self-queueing. DS-TE caps the premium class\n\
     at 40%% per link, spreading further demands instead — the refined\n\
     version of 'combining diffserv and MPLS' (§3.1)."

(* --- A6: shaping vs policing at the CPE --------------------------------- *)

let a6 () =
  Tables.heading
    "A6: CPE shaping vs policing — bursty source against a 1 Mb/s contract";
  (* A Pareto-bursty source offering ~1.5 Mb/s against a 1 Mb/s
     contract, measured at the contract boundary. *)
  let run_mode mode =
    let engine = Engine.create () in
    let collector = Mvpn_qos.Sla.collector () in
    let sent = ref 0 in
    let deliver p =
      Mvpn_qos.Sla.on_receive collector ~now:(Engine.now engine) p
    in
    let submit =
      match mode with
      | `Shape ->
        let sh =
          Mvpn_qos.Shaper.create engine ~rate_bps:1e6 ~burst_bytes:15_000.0
            ~queue_bytes:200_000 ~release:deliver
        in
        fun p -> ignore (Mvpn_qos.Shaper.offer sh p)
      | `Police ->
        let meter =
          Mvpn_qos.Meter.srtcm ~cir_bps:1e6 ~cbs_bytes:15_000.0
            ~ebs_bytes:0.0
        in
        fun p ->
          (match
             Mvpn_qos.Meter.meter meter ~now:(Engine.now engine)
               ~bytes:p.Mvpn_net.Packet.size
           with
           | Mvpn_qos.Meter.Green | Mvpn_qos.Meter.Yellow -> deliver p
           | Mvpn_qos.Meter.Red -> ())
    in
    let rng = Mvpn_sim.Rng.create 808 in
    let emit size =
      incr sent;
      let now = Engine.now engine in
      let p =
        Mvpn_net.Packet.make ~size ~now
          (Mvpn_net.Flow.make
             (Mvpn_net.Ipv4.of_octets 10 0 0 1)
             (Mvpn_net.Ipv4.of_octets 10 1 0 1))
      in
      Mvpn_qos.Sla.on_send collector ~now ~bytes:size;
      submit p
    in
    Mvpn_core.Traffic.pareto_bursts engine rng ~start:0.0 ~stop:30.0
      ~burst_rate:6.0 ~mean_burst_bytes:30_000.0 emit;
    Engine.run engine;
    Mvpn_qos.Sla.report collector
  in
  let widths = [10; 10; 12; 12; 12] in
  Tables.row widths ["mode"; "loss"; "mean ms"; "p99 ms"; "tput Mb/s"];
  Tables.rule widths;
  List.iter
    (fun (name, mode) ->
       let r = run_mode mode in
       Tables.row widths
         [ name; Tables.pct r.Mvpn_qos.Sla.loss;
           Tables.ms r.Mvpn_qos.Sla.mean_delay;
           Tables.ms r.Mvpn_qos.Sla.p99_delay;
           Tables.mbps r.Mvpn_qos.Sla.throughput_bps ])
    [("shape", `Shape); ("police", `Police)];
  Tables.note
    "\nThe classic trade: shaping buffers the burst (delay up, loss only\n\
     when the buffer fills), policing drops it on the spot (loss up,\n\
     no added delay). TCP-like elastic traffic prefers the shaper; the\n\
     EF class must never see either — that is what CBQ admission at the\n\
     CPE (E6) is for."

let run () =
  a1 ();
  a2 ();
  a3 ();
  a4 ();
  a5 ();
  a6 ()
