type connect = { out_dlci : int; next_hop : int }

type t = {
  congestion_threshold : int;
  queue_capacity : int;
  table : (int, connect) Hashtbl.t;
  queue : (Frame.t * int) Queue.t;
  mutable de_discards : int;
}

let create ?(congestion_threshold = 16) ?(queue_capacity = 64) () =
  if congestion_threshold < 1 || queue_capacity < congestion_threshold then
    invalid_arg "Frswitch.create: thresholds inconsistent";
  { congestion_threshold; queue_capacity; table = Hashtbl.create 32;
    queue = Queue.create (); de_discards = 0 }

let cross_connect t ~in_dlci ~out_dlci ~next_hop =
  if Hashtbl.mem t.table in_dlci then
    Error (Printf.sprintf "dlci %d already cross-connected" in_dlci)
  else begin
    Hashtbl.replace t.table in_dlci { out_dlci; next_hop };
    Ok ()
  end

type forward_result =
  | Forwarded of { frame : Frame.t; next_hop : int }
  | Discarded_de
  | Queue_full
  | Unknown_dlci

let submit t (frame : Frame.t) =
  match Hashtbl.find_opt t.table frame.Frame.dlci with
  | None -> Unknown_dlci
  | Some cc ->
    let depth = Queue.length t.queue in
    if depth >= t.queue_capacity then Queue_full
    else if depth >= t.congestion_threshold && frame.Frame.de then begin
      (* Congestion: shed discard-eligible traffic first. *)
      t.de_discards <- t.de_discards + 1;
      Discarded_de
    end
    else begin
      let out =
        { frame with Frame.dlci = cc.out_dlci }
      in
      if depth >= t.congestion_threshold then out.Frame.fecn <- true;
      Queue.add (out, cc.next_hop) t.queue;
      Forwarded { frame = out; next_hop = cc.next_hop }
    end

let drain t =
  if Queue.is_empty t.queue then None else Some (Queue.pop t.queue)

let queue_depth t = Queue.length t.queue

let de_discards t = t.de_discards
