(** Mass service design: thousands of customers, deterministically.

    The generator draws every customer from an {e indexed}
    {!Mvpn_sim.Rng.split} substream of the seed — substream [i] depends
    only on [(seed, i)], never on how many customers were generated
    before or in what order. That hygiene is load-bearing: churn
    replays, shuffled iteration and partial regeneration all produce
    byte-identical portfolios (pinned by tests).

    Site counts are heavy-tailed (Pareto, shape 1.4, minimum 3) — most
    customers are small, a few have hundreds of sites — matching the
    enterprise-VPN shape the paper's §2.1 scaling argument assumes. *)

type dist = Pareto | Uniform

val dist_name : dist -> string

type t = private {
  seed : int;
  pe_count : int;
  dist : dist;
  customers : Service.customer array;  (** index [id - 1] *)
}

val generate :
  ?dist:dist -> ?pe_count:int -> ?max_sites:int -> seed:int ->
  customers:int -> unit -> t
(** [pe_count] defaults to 12, [max_sites] (tail clamp) to 512.
    @raise Invalid_argument on a non-positive customer count or a
    [pe_count] outside [1, 64]. *)

val generate_customer :
  ?dist:dist -> ?pe_count:int -> ?max_sites:int -> seed:int -> id:int ->
  unit -> Service.customer
(** Regenerate one customer from the seed alone — the same derivation
    {!generate} uses, exposed so order-independence is testable: calling
    this for ids in any order reproduces the portfolio exactly. *)

val of_customers :
  ?dist:dist -> pe_count:int -> seed:int -> Service.customer list -> t
(** Hand-built portfolio (tests, examples). Customers must carry ids
    [1..n] in order.
    @raise Invalid_argument otherwise. *)

val site_count : t -> int

val customer : t -> int -> Service.customer
(** By 1-based id. @raise Invalid_argument if out of range. *)

val overlay_circuits : t -> int
(** What the same portfolio would cost as an overlay: sum over
    customers of [s*(s-1)/2] point-to-point virtual circuits — the
    quadratic half of claim C1, computed arithmetically for contrast. *)

(** {1 Churn} *)

type op =
  | Add_site of { customer : int; sid : int; pe : int }
  | Remove_site of { customer : int; sid : int }
  | Change_tier of { customer : int; tier : Service.tier }

val op_name : op -> string

val churn : t -> seed:int -> ops:int -> op list
(** A deterministic churn sequence, valid against the evolving
    portfolio (no removal of a customer's last site, no duplicate
    sids). Op [k] draws from substream [k] of [seed], so the sequence
    replays byte-identically. *)

val apply : t -> op -> t
(** Pure replay of one op.
    @raise Invalid_argument on an op inconsistent with the portfolio
    (unknown customer, duplicate or missing sid). *)

val apply_all : t -> op list -> t
