(** Egress port: a queue discipline draining onto a link at line rate.

    Where queueing delay, serialization delay and loss actually happen
    in the simulation. A packet handed to {!send} is classified into a
    band, queued (or dropped by the discipline), serialized at the
    link's bandwidth, and delivered to the neighbor after the link's
    propagation delay via the [on_deliver] callback. Transmission is
    pipelined: the next packet starts serializing while the previous one
    propagates. *)

type t

val create :
  ?on_txstart:(Mvpn_net.Packet.t -> unit) ->
  ?on_drop:(reason:string -> Mvpn_net.Packet.t -> unit) ->
  Mvpn_sim.Engine.t ->
  link:Mvpn_sim.Topology.link ->
  qdisc:Queue_disc.t ->
  classify:(Mvpn_net.Packet.t -> int) ->
  on_deliver:(Mvpn_net.Packet.t -> unit) ->
  t
(** [classify] maps a packet to a band index (e.g. by EXP bits when
    labelled, by DSCP otherwise); [on_deliver] fires at the far end of
    the link. [on_txstart] fires when a packet leaves the queue and
    serialization begins (span tracing records its "txstart" hop
    there); [on_drop] fires when the port discards — reasons
    ["queue-tail"], ["queue-red"], ["link-down"]. Both default to
    no-ops and must not re-enter the port. *)

val send : t -> Mvpn_net.Packet.t -> unit
(** Enqueue a packet for transmission. Dropped (counted, and reported
    via [on_drop]) if the discipline refuses it, the link is down, or
    an armed fault claims it (reasons ["chaos-loss"] /
    ["chaos-corrupt"]). *)

(** {2 Fault injection}

    The chaos engine's data-plane lever: an armed fault discards a
    fraction of arriving packets before they queue, modelling a lossy
    or corrupting span. Verdicts are a pure hash of (packet uid, seed)
    — not a stream — so a given packet's fate on this port is
    independent of what other traffic crossed it, which keeps seeded
    chaos runs comparable across configurations. *)

val set_fault : t -> ?loss:float -> ?corrupt:float -> seed:int -> unit -> unit
(** Arm a loss/corruption fault. [loss] and [corrupt] (defaults 0) are
    independent per-packet probabilities; corruption is only tested on
    packets that survive loss.
    @raise Invalid_argument if a probability is outside [0, 1]. *)

val clear_fault : t -> unit

val faulty : t -> bool

val set_handoff : t -> (arrival:float -> Mvpn_net.Packet.t -> unit) option -> unit
(** Override propagation: when set, a packet finishing serialization on
    an up link is passed to the handoff with its computed arrival time
    ([now + link delay]) instead of being scheduled on this engine. The
    parallel runner installs handoffs on cut-link ports so the packet
    crosses into the shard that owns the far end; [None] restores local
    propagation. Serialization, port counters and drop handling are
    unchanged either way. *)

val link : t -> Mvpn_sim.Topology.link

val qdisc : t -> Queue_disc.t

type counters = {
  offered : int;
  delivered : int;
  dropped_queue : int;
  dropped_link_down : int;
  dropped_fault : int;  (** discards by an armed chaos fault *)
  bytes_delivered : int;
  busy_seconds : float;
}

val counters : t -> counters

val utilization : t -> now:float -> float
(** Fraction of elapsed time the transmitter was busy. *)
