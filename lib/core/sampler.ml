module Engine = Mvpn_sim.Engine
module Port = Mvpn_qos.Port
module Queue_disc = Mvpn_qos.Queue_disc
module T = Mvpn_telemetry

(* Dispatch-ledger kind for the sampler's own tick events. *)
let k_sample = Mvpn_sim.Profile.register_kind "telemetry.sample"

let default_interval = 1.0

(* The per-run state is plain fields: previous cumulative counts for
   the delta series, cumulative per-(vpn, band) fate tallies fed by
   [observe_fate]. Series handles are process-wide registry metrics;
   the state here belongs to one scenario replica.

   Shard determinism: every shard replica runs the same tick schedule,
   so every replica's series carry the same sample times. A non-owner
   replica sees no traffic on a port (and no fates for pairs it did
   not arm), so it contributes exactly 0.0 or 0 at every sample; the
   cross-domain merge ([Registry.absorb] summing values at equal
   times) therefore reproduces the sequential series bit-for-bit —
   [x +. 0.0 = x] exactly for the finite non-negative values recorded
   here. Host-scope series (GC) sum real per-domain values and are
   excluded from determinism-gated exports. *)
type t = {
  sc : Scenario.t;
  interval : float;
  until : float;
  link_ids : int array;
  link_util : T.Timeseries.t array;
  link_prev_bytes : int array;
  band_depth : T.Timeseries.t array;
  band_drops : T.Timeseries.t array;
  band_prev_drops : int array;
  slo_good : T.Timeseries.t array array;  (* [vpn].(band) *)
  slo_bad : T.Timeseries.t array array;
  vpn_present : bool array;
  good_cells : int array array;
  bad_cells : int array array;
  prev_good : int array array;
  prev_bad : int array array;
  (* [latency > bound] marks a delivery bad, mirroring
     [Slo.observe_delivery] with the stock per-band objectives. *)
  band_bounds : float array;  (* nan = no latency bound *)
  gc_minor : T.Timeseries.t;
  mutable prev_minor : float;
  mutable stopped : bool;
}

let series_capacity = T.Timeseries.default_capacity

let sim_series name = T.Registry.series ~capacity:series_capacity name

let host_series name =
  T.Registry.series ~capacity:series_capacity ~scope:T.Timeseries.Host name

let link_series id = sim_series (Printf.sprintf "ts.link.%d.util" id)

let depth_series b = sim_series (Printf.sprintf "ts.band.%d.depth_pkts" b)

let drops_series b = sim_series (Printf.sprintf "ts.band.%d.drops" b)

let good_series ~vpn ~band =
  sim_series (Printf.sprintf "ts.slo.v%d.b%d.good" vpn band)

let bad_series ~vpn ~band =
  sim_series (Printf.sprintf "ts.slo.v%d.b%d.bad" vpn band)

let slo_target ~band = (Qos_mapping.default_objective band).T.Slo.target

let observe_fate t ~time:_ ~vpn ~band ~dropped ~latency =
  if vpn < Array.length t.vpn_present && t.vpn_present.(vpn)
  && band < Qos_mapping.band_count then begin
    let bad =
      dropped
      || (let bound = t.band_bounds.(band) in
          Float.is_finite bound && latency > bound)
    in
    if bad then t.bad_cells.(vpn).(band) <- t.bad_cells.(vpn).(band) + 1
    else t.good_cells.(vpn).(band) <- t.good_cells.(vpn).(band) + 1
  end

let sample t =
  let net = Scenario.network t.sc in
  let now = Engine.now (Scenario.engine t.sc) in
  (* Per-link utilization: delivered-bytes delta over the interval,
     against capacity. [Port.counters] are plain always-on fields, so
     the read is exact mid-window (the coalesced telemetry counters
     are not). *)
  Array.iteri
    (fun i link_id ->
       let port = Network.port net ~link_id in
       let c = Port.counters port in
       let bytes = c.Port.bytes_delivered in
       let bw = (Port.link port).Mvpn_sim.Topology.bandwidth in
       let util =
         float_of_int ((bytes - t.link_prev_bytes.(i)) * 8)
         /. (bw *. t.interval)
       in
       t.link_prev_bytes.(i) <- bytes;
       T.Timeseries.add t.link_util.(i) ~time:now util)
    t.link_ids;
  (* Per-band queue depth (instantaneous, packets) and drop deltas,
     aggregated over the core ports. *)
  let bands = Qos_mapping.band_count in
  let depth = Array.make bands 0 and drops = Array.make bands 0 in
  Array.iter
    (fun link_id ->
       let port = Network.port net ~link_id in
       let stats = Queue_disc.stats (Port.qdisc port) in
       Array.iteri
         (fun b (s : Queue_disc.band_stats) ->
            if b < bands then begin
              depth.(b) <-
                depth.(b) + s.Queue_disc.enqueued - s.Queue_disc.dequeued
                - s.Queue_disc.tail_dropped - s.Queue_disc.red_dropped;
              drops.(b) <-
                drops.(b) + s.Queue_disc.tail_dropped
                + s.Queue_disc.red_dropped
            end)
         stats)
    t.link_ids;
  for b = 0 to bands - 1 do
    T.Timeseries.add t.band_depth.(b) ~time:now (float_of_int depth.(b));
    T.Timeseries.add t.band_drops.(b) ~time:now
      (float_of_int (drops.(b) - t.band_prev_drops.(b)));
    t.band_prev_drops.(b) <- drops.(b)
  done;
  (* Per-(vpn, band) SLO material: good/bad deliveries this interval.
     Counts are summable across shards — the burn rate itself is a
     ratio and is derived at export time from the merged sums. *)
  Array.iteri
    (fun vpn present ->
       if present then
         for b = 0 to bands - 1 do
           let g = t.good_cells.(vpn).(b) and bd = t.bad_cells.(vpn).(b) in
           T.Timeseries.add t.slo_good.(vpn).(b) ~time:now
             (float_of_int (g - t.prev_good.(vpn).(b)));
           T.Timeseries.add t.slo_bad.(vpn).(b) ~time:now
             (float_of_int (bd - t.prev_bad.(vpn).(b)));
           t.prev_good.(vpn).(b) <- g;
           t.prev_bad.(vpn).(b) <- bd
         done)
    t.vpn_present;
  (* Host scope: this domain's allocation rate, for overhead forensics.
     Never part of a cross-K determinism gate. *)
  let mw = Gc.minor_words () in
  T.Timeseries.add t.gc_minor ~time:now (mw -. t.prev_minor);
  t.prev_minor <- mw

let stop t = t.stopped <- true

let start ?(interval = default_interval) ?until sc =
  (* A non-finite or non-positive interval is a silent runaway: the
     self-reschedule would loop at one instant (0, nan) or never fire
     again (infinity). Reject at config time with a clear error. *)
  if not (Float.is_finite interval && interval > 0.0) then
    invalid_arg
      (Printf.sprintf
         "Sampler.start: interval must be finite and positive, got %g"
         interval);
  let engine = Scenario.engine sc in
  let horizon =
    match until with
    | Some h when Float.is_nan h || h < 0.0 ->
      invalid_arg "Sampler.start: until must be >= 0"
    | Some h -> h
    | None -> infinity
  in
  let link_ids = Array.of_list (Scenario.core_link_ids sc) in
  let bands = Qos_mapping.band_count in
  let max_vpn =
    Array.fold_left
      (fun acc (s : Site.t) -> Stdlib.max acc s.Site.vpn)
      0 (Scenario.sites sc)
  in
  let vpn_present = Array.make (max_vpn + 1) false in
  vpn_present.(0) <- true;  (* un-tenanted traffic books on vpn 0 *)
  Array.iter
    (fun (s : Site.t) -> vpn_present.(s.Site.vpn) <- true)
    (Scenario.sites sc);
  let per_vpn mk =
    Array.init (max_vpn + 1) (fun vpn ->
        if vpn_present.(vpn) then
          Array.init bands (fun band -> mk ~vpn ~band)
        else [||])
  in
  let t =
    { sc; interval; until = horizon;
      link_ids;
      link_util = Array.map link_series link_ids;
      link_prev_bytes = Array.make (Array.length link_ids) 0;
      band_depth = Array.init bands depth_series;
      band_drops = Array.init bands drops_series;
      band_prev_drops = Array.make bands 0;
      slo_good = per_vpn good_series;
      slo_bad = per_vpn bad_series;
      vpn_present;
      good_cells = Array.make_matrix (max_vpn + 1) bands 0;
      bad_cells = Array.make_matrix (max_vpn + 1) bands 0;
      prev_good = Array.make_matrix (max_vpn + 1) bands 0;
      prev_bad = Array.make_matrix (max_vpn + 1) bands 0;
      band_bounds =
        Array.init bands (fun band ->
            match (Qos_mapping.default_objective band).T.Slo.latency_p99 with
            | Some bound -> bound
            | None -> Float.nan);
      gc_minor = host_series "ts.gc.minor_words";
      prev_minor = Gc.minor_words ();
      stopped = false }
  in
  let rec tick () =
    if (not t.stopped) && Engine.now engine <= t.until then begin
      sample t;
      Engine.schedule_kind engine ~kind:k_sample ~delay:t.interval tick
    end
  in
  Engine.schedule_kind engine ~kind:k_sample ~delay:t.interval tick;
  t

let interval t = t.interval
