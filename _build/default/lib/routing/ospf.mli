(** Link-state interior routing (OSPF-like).

    Each router originates a link-state advertisement (LSA) describing
    its up adjacencies and attached prefixes; LSAs flood hop by hop in
    synchronous rounds; each router then runs SPF over its own LSA
    database to build a FIB. The model captures what the paper leans on:
    convergence delay in flooding rounds, control-message volume, and —
    crucially for §2.2 — the fact that the LSAs carry *no* resource-usage
    information, so plain SPF routing cannot do bandwidth-aware
    admission (that is what E8 demonstrates against CSPF). *)

type t

val create : ?members:(int -> bool) -> Mvpn_sim.Topology.t -> t
(** One router per topology node. [members] (default: everyone)
    restricts the routing domain: only member routers originate LSAs,
    form adjacencies and flood — the "separate IGP per provider"
    boundary of multi-carrier deployments. Non-member nodes keep empty
    tables. *)

val attach_prefix : t -> int -> Mvpn_net.Prefix.t -> unit
(** Declare that router [node] originates reachability for a prefix
    (a customer subnet behind it, a loopback, ...). Takes effect at the
    next {!converge}. *)

val converge : t -> int
(** Re-originate every router's LSA and flood to fixpoint. Returns the
    number of synchronous flooding rounds taken (0 when nothing
    changed). Call again after topology or prefix changes. *)

val converged : t -> bool
(** [true] when every router's database equals every other's. *)

val messages_sent : t -> int
(** Cumulative count of LSA copies transferred between routers. *)

val fib : t -> int -> Mvpn_net.Fib.t
(** The forwarding table SPF built for a router at the last
    {!converge}. Routes carry source {!Mvpn_net.Fib.Igp}; a prefix
    attached to the router itself maps to
    {!Mvpn_net.Fib.local_delivery}. *)

val next_hop_to_router : t -> src:int -> dst:int -> int option
(** Next hop from [src] toward router [dst] per [src]'s database. *)

val distance : t -> src:int -> dst:int -> float
(** IGP distance between routers per [src]'s database ([infinity] when
    unreachable). *)

val router_count : t -> int
