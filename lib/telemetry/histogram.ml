(* Log-bucketed histogram: bucket [i] covers [lo·2^i, lo·2^(i+1)).
   Recording is O(1) (one frexp, one array bump); quantiles are read by
   a cumulative walk with linear interpolation inside the crossing
   bucket, clamped to the exact observed min/max. Relative error is
   bounded by the factor-of-two bucket width, which is plenty for
   latency p50/p90/p99 summaries.

   The handle (name + bucket geometry) is shared across domains; the
   mutable state lives in domain-local storage so concurrent domains
   record into private cells. Per-domain partials are combined with
   [snapshot] (in the owning domain) + [absorb]. *)

(* [fl] packs the float accumulators ([0] sum, [1] min, [2] max) in a
   flat array so a hot observe is three unboxed stores, not three
   fresh boxes. *)
type state = {
  counts : int array;
  mutable total : int;
  fl : floatarray;
}

let f_sum = 0
and f_min = 1
and f_max = 2

let fresh_fl () =
  let a = Float.Array.make 3 0.0 in
  Float.Array.set a f_min infinity;
  Float.Array.set a f_max neg_infinity;
  a

(* Last resolved (domain id, state) pair — same single-mutable-field
   memo as {!Counter.cell}, for the same reason: [Domain.DLS.get] per
   observation is measurable in the per-hop instrumentation. *)
type cache = { did : int; st : state }

type t = {
  name : string;
  lo : float;  (* lower bound of bucket 0; values below land in it *)
  buckets : int;
  cells : state Domain.DLS.key;
  mutable last : cache;
}

let empty_cache =
  { did = -1; st = { counts = [||]; total = 0; fl = fresh_fl () } }

let default_buckets = 96

let make ?(lo = 1e-9) ?(buckets = default_buckets) name =
  if lo <= 0.0 then invalid_arg "Histogram.make: lo must be positive";
  if buckets < 1 then invalid_arg "Histogram.make: need at least one bucket";
  { name; lo; buckets;
    cells =
      Domain.DLS.new_key (fun () ->
          { counts = Array.make buckets 0; total = 0; fl = fresh_fl () });
    last = empty_cache }

let name t = t.name

let state t =
  let did = (Domain.self () :> int) in
  let l = t.last in
  if l.did = did then l.st
  else begin
    let st = Domain.DLS.get t.cells in
    t.last <- { did; st };
    st
  end

let bucket_index t v =
  if v < t.lo then 0
  else begin
    (* v/lo = m·2^e with m in [0.5, 1), so v sits in bucket e-1. *)
    let _, e = Float.frexp (v /. t.lo) in
    min (t.buckets - 1) (max 0 (e - 1))
  end

let observe_unchecked t v =
  let s = state t in
  let i = bucket_index t v in
  s.counts.(i) <- s.counts.(i) + 1;
  s.total <- s.total + 1;
  Float.Array.set s.fl f_sum (Float.Array.get s.fl f_sum +. v);
  if v < Float.Array.get s.fl f_min then Float.Array.set s.fl f_min v;
  if v > Float.Array.get s.fl f_max then Float.Array.set s.fl f_max v

let observe t v = if !Control.enabled then observe_unchecked t v

let observe_int t n = if !Control.enabled then observe_unchecked t (float_of_int n)

let count t = (state t).total

let sum t = Float.Array.get (state t).fl f_sum

let mean t =
  let s = state t in
  if s.total = 0 then 0.0
  else Float.Array.get s.fl f_sum /. float_of_int s.total

let min_value t =
  let s = state t in
  if s.total = 0 then 0.0 else Float.Array.get s.fl f_min

let max_value t =
  let s = state t in
  if s.total = 0 then 0.0 else Float.Array.get s.fl f_max

let quantile t q =
  if q < 0.0 || q > 1.0 then
    invalid_arg "Histogram.quantile: fraction outside [0, 1]";
  let s = state t in
  if s.total = 0 then 0.0
  else begin
    let target = Float.max 1.0 (Float.round (q *. float_of_int s.total)) in
    let n = t.buckets in
    let rec walk i cum =
      if i >= n then Float.Array.get s.fl f_max
      else begin
        let cum' = cum + s.counts.(i) in
        if float_of_int cum' >= target && s.counts.(i) > 0 then begin
          let lower = if i = 0 then 0.0 else t.lo *. Float.pow 2.0 (float_of_int i) in
          let upper = t.lo *. Float.pow 2.0 (float_of_int (i + 1)) in
          let frac =
            (target -. float_of_int cum) /. float_of_int s.counts.(i)
          in
          let est = lower +. (frac *. (upper -. lower)) in
          Float.min (Float.Array.get s.fl f_max)
            (Float.max (Float.Array.get s.fl f_min) est)
        end
        else walk (i + 1) cum'
      end
    in
    walk 0 0
  end

let p50 t = quantile t 0.50
let p90 t = quantile t 0.90
let p99 t = quantile t 0.99

let reset t =
  let s = state t in
  Array.fill s.counts 0 t.buckets 0;
  s.total <- 0;
  Float.Array.set s.fl f_sum 0.0;
  Float.Array.set s.fl f_min infinity;
  Float.Array.set s.fl f_max neg_infinity

(* Snapshots restore unconditionally, like [reset] — they are harness
   operations, not instrumentation. *)
type snapshot = {
  s_counts : int array;
  s_total : int;
  s_sum : float;
  s_vmin : float;
  s_vmax : float;
}

let snapshot t =
  let s = state t in
  { s_counts = Array.copy s.counts; s_total = s.total;
    s_sum = Float.Array.get s.fl f_sum;
    s_vmin = Float.Array.get s.fl f_min;
    s_vmax = Float.Array.get s.fl f_max }

let restore t snap =
  let s = state t in
  let n = Stdlib.min t.buckets (Array.length snap.s_counts) in
  Array.fill s.counts 0 t.buckets 0;
  Array.blit snap.s_counts 0 s.counts 0 n;
  s.total <- snap.s_total;
  Float.Array.set s.fl f_sum snap.s_sum;
  Float.Array.set s.fl f_min snap.s_vmin;
  Float.Array.set s.fl f_max snap.s_vmax

let absorb t snap =
  let s = state t in
  let n = Stdlib.min t.buckets (Array.length snap.s_counts) in
  for i = 0 to n - 1 do
    s.counts.(i) <- s.counts.(i) + snap.s_counts.(i)
  done;
  s.total <- s.total + snap.s_total;
  Float.Array.set s.fl f_sum (Float.Array.get s.fl f_sum +. snap.s_sum);
  if snap.s_vmin < Float.Array.get s.fl f_min then
    Float.Array.set s.fl f_min snap.s_vmin;
  if snap.s_vmax > Float.Array.get s.fl f_max then
    Float.Array.set s.fl f_max snap.s_vmax

let pp ppf t =
  Format.fprintf ppf
    "%s: n=%d mean=%.6g p50=%.6g p90=%.6g p99=%.6g max=%.6g" t.name (count t)
    (mean t) (p50 t) (p90 t) (p99 t) (max_value t)
