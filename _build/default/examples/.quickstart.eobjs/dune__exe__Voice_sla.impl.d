examples/voice_sla.ml: List Mvpn_core Mvpn_qos Printf Qos_mapping Scenario String
