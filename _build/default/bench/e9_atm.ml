(* E9 — MPLS over packets vs the ATM substrate it grew out of (§3, §5).

   "MPLS takes advantage of the intelligence in routers and the speed
   of switches, providing a way to map IP packets into
   connection-oriented transports like ATM and frame relay in a
   reasonably efficient and scalable way."

   Two costs of running IP over native ATM that MPLS sheds:
   (a) the cell tax — 5 bytes of header per 48 of payload plus AAL5
       padding, against the 8-byte two-label MPLS stack;
   (b) loss amplification — one lost cell corrupts the whole AAL5
       frame, so frame loss is ~1-(1-p)^cells. *)

open Mvpn_atm
module Rng = Mvpn_sim.Rng

(* The classic IMIX: 7:4:1 mix of 40, 576 and 1500-byte packets. *)
let imix = [ (40, 7); (576, 4); (1500, 1) ]

let mpls_overhead = 8  (* transport + VPN label *)

let cell_tax () =
  Tables.heading "E9a: transport overhead, AAL5/ATM vs MPLS shim";
  let widths = [10; 12; 12; 12; 12] in
  Tables.row widths
    ["packet"; "atm cells"; "atm wire"; "atm tax"; "mpls tax"];
  Tables.rule widths;
  List.iter
    (fun (size, _) ->
       Tables.row widths
         [ string_of_int size;
           string_of_int (Aal5.cells_for ~payload:size);
           string_of_int (Aal5.wire_bytes ~payload:size);
           Tables.pct (Aal5.overhead_fraction ~payload:size);
           Tables.pct
             (float_of_int mpls_overhead
              /. float_of_int (size + mpls_overhead)) ])
    imix;
  (* Weighted IMIX average. *)
  let total_payload, total_atm, total_mpls =
    List.fold_left
      (fun (p, a, m) (size, weight) ->
         ( p + (size * weight),
           a + (Aal5.wire_bytes ~payload:size * weight),
           m + ((size + mpls_overhead) * weight) ))
      (0, 0, 0) imix
  in
  Tables.row widths
    [ "IMIX"; "-"; "-";
      Tables.pct (1.0 -. (float_of_int total_payload /. float_of_int total_atm));
      Tables.pct
        (1.0 -. (float_of_int total_payload /. float_of_int total_mpls)) ];
  Tables.note
    "\nExpected shape: the ATM cell tax runs ~12%% at MTU and ~25%% on\n\
     voice-sized packets (IMIX ~17%%), while the MPLS shim costs ~0.5-17%%\n\
     with an IMIX average near 4%% — the 'reasonably efficient' claim."

let loss_amplification () =
  Tables.heading
    "E9b: loss amplification — random cell loss vs AAL5 frame loss";
  let widths = [12; 12; 14; 14; 14] in
  Tables.row widths
    ["cell loss"; "pkt bytes"; "frame loss"; "1-(1-p)^n"; "mpls pkt loss"];
  Tables.rule widths;
  List.iter
    (fun p ->
       List.iter
         (fun payload ->
            let rng = Rng.create (int_of_float (p *. 1e6) + payload) in
            let r = Aal5.Reassembler.create () in
            let frames = 20_000 in
            for frame_id = 1 to frames do
              List.iter
                (fun c ->
                   if not (Rng.bool rng p) then
                     ignore (Aal5.Reassembler.push r c))
                (Aal5.segment ~vpi:0 ~vci:1 ~frame_id ~payload)
            done;
            let ok = Aal5.Reassembler.frames_ok r in
            let measured =
              1.0 -. (float_of_int ok /. float_of_int frames)
            in
            let n = float_of_int (Aal5.cells_for ~payload) in
            let predicted = 1.0 -. ((1.0 -. p) ** n) in
            Tables.row widths
              [ Tables.pct p; string_of_int payload; Tables.pct measured;
                Tables.pct predicted; Tables.pct p ])
         [576; 1500];
       Tables.rule widths)
    [0.001; 0.01; 0.05];
  Tables.note
    "\nExpected shape: frame loss tracks 1-(1-p)^cells — a 1%% cell loss\n\
     destroys ~27%% of MTU frames (32 cells each), where an MPLS packet\n\
     network at the same per-unit loss rate loses just the 1%%. Cell\n\
     switching's QoS machinery survives in MPLS; the SAR fragility\n\
     does not."

let qos_inheritance () =
  Tables.heading "E9c: what MPLS keeps — per-VC admission arithmetic";
  let sw = Switch.create ~line_rate_bps:155e6 in
  let admitted_cbr = ref 0 and admitted_vbr = ref 0 in
  (* 64 kb/s voice circuits as CBR: PCR = 64e3/8/53 w/ AAL1-ish
     payload; model simply as 64 kb/s of cells. *)
  let voice_pcr = 64e3 /. (float_of_int Cell.cell_bytes *. 8.0) *. 53.0 /. 47.0 in
  (try
     for i = 0 to 100_000 do
       match
         Switch.admit sw ~in_vpi:0 ~in_vci:(32 + i) ~out_vpi:1
           ~out_vci:(32 + i) ~next_hop:1 (Switch.Cbr { pcr = voice_pcr })
       with
       | Ok () -> incr admitted_cbr
       | Error _ -> raise Exit
     done
   with Exit -> ());
  let sw2 = Switch.create ~line_rate_bps:155e6 in
  (try
     for i = 0 to 100_000 do
       match
         Switch.admit sw2 ~in_vpi:0 ~in_vci:(32 + i) ~out_vpi:1
           ~out_vci:(32 + i) ~next_hop:1
           (Switch.Vbr
              { scr = voice_pcr /. 2.35; pcr = voice_pcr; mbs = 100 })
       with
       | Ok () -> incr admitted_vbr
       | Error _ -> raise Exit
     done
   with Exit -> ());
  let widths = [24; 14] in
  Tables.row widths ["service category"; "voice circuits"];
  Tables.rule widths;
  Tables.row widths ["CBR (reserve peak)"; string_of_int !admitted_cbr];
  Tables.row widths
    ["VBR (reserve sustained)"; string_of_int !admitted_vbr];
  Tables.note
    "\nVBR's statistical multiplexing admits ~2.35x the circuits of CBR\n\
     on the same OC-3 — the 'guaranteed QoS features of ATM' that the\n\
     DiffServ EF/AF split re-creates per class instead of per circuit."

let run () =
  cell_tax ();
  loss_amplification ();
  qos_inheritance ()
