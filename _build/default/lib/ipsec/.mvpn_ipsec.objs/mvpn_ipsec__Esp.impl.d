lib/ipsec/esp.ml: Crypto
