lib/frelay/frame.ml: Format Printf
