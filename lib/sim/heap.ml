(* Slots are a sum type so vacated and never-used positions hold [Empty]
   rather than a stale entry: a popped event's closure and payload must
   become unreachable immediately, or a long-running simulation retains
   every event it ever processed for the life of the heap. *)
type 'a slot = Empty | Slot of { key : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a slot array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let size h = h.size

let is_empty h = h.size = 0

let less a b =
  match a, b with
  | Slot a, Slot b -> a.key < b.key || (a.key = b.key && a.seq < b.seq)
  | Empty, _ | _, Empty -> assert false

let grow h =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let ndata = Array.make ncap Empty in
    Array.blit h.data 0 ndata 0 h.size;
    h.data <- ndata
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
  if r < h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h key value =
  grow h;
  h.data.(h.size) <- Slot { key; seq = h.next_seq; value };
  h.next_seq <- h.next_seq + 1;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    match h.data.(0) with
    | Empty -> assert false
    | Slot top ->
      h.size <- h.size - 1;
      if h.size > 0 then begin
        h.data.(0) <- h.data.(h.size);
        sift_down h 0
      end;
      h.data.(h.size) <- Empty;
      Some (top.key, top.value)
  end

let peek h =
  if h.size = 0 then None
  else
    match h.data.(0) with
    | Empty -> assert false
    | Slot top -> Some (top.key, top.value)

(* Allocation-free pop for the engine's run loop: the option/tuple of
   [peek]+[pop] is replaced by a sentinel compare ([default], returned
   physically when nothing is due) and an out-parameter for the key
   (a floatarray cell, so the key crosses the call unboxed). *)
let pop_due h ~bound ~strict ~default ~key_out =
  if h.size = 0 then default
  else
    match h.data.(0) with
    | Empty -> assert false
    | Slot top ->
      if (if strict then top.key < bound else top.key <= bound) then begin
        h.size <- h.size - 1;
        if h.size > 0 then begin
          h.data.(0) <- h.data.(h.size);
          sift_down h 0
        end;
        h.data.(h.size) <- Empty;
        Float.Array.set key_out 0 top.key;
        top.value
      end
      else default

let clear h =
  h.data <- [||];
  h.size <- 0;
  h.next_seq <- 0
