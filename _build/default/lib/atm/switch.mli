(** ATM VC switching and connection admission.

    The circuit side of the comparison: a switch forwards cells by
    (VPI, VCI) table lookup — the very label swapping MPLS generalized —
    and admits connections against the line rate by service category:

    - CBR reserves its peak cell rate;
    - VBR reserves its sustained cell rate (statistical gain over CBR);
    - UBR reserves nothing (best effort).

    The admission arithmetic is what "guaranteed QoS features of ATM"
    (§3.1) means concretely. *)

type category =
  | Cbr of { pcr : float }  (** peak cell rate, cells/s *)
  | Vbr of { scr : float; pcr : float; mbs : int }
      (** sustained + peak cell rates and max burst size *)
  | Ubr

type t

val create : line_rate_bps:float -> t
(** @raise Invalid_argument on a non-positive rate. *)

val line_cell_rate : t -> float
(** The line rate in cells per second. *)

val admit :
  t -> in_vpi:int -> in_vci:int -> out_vpi:int -> out_vci:int ->
  next_hop:int -> category -> (unit, string) result
(** Install a cross-connect if the category's reservation fits the
    remaining line capacity. Rejects duplicate (in_vpi, in_vci). *)

val release : t -> in_vpi:int -> in_vci:int -> bool

val switch : t -> Cell.t -> (Cell.t * int) option
(** Table lookup: the outgoing (rewritten) cell and next hop, or [None]
    for an unknown VC (cell dropped). *)

val reserved_fraction : t -> float
(** Committed cell rate over line cell rate. *)

val vc_count : t -> int
