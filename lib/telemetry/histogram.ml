(* Log-bucketed histogram: bucket [i] covers [lo·2^i, lo·2^(i+1)).
   Recording is O(1) (one frexp, one array bump); quantiles are read by
   a cumulative walk with linear interpolation inside the crossing
   bucket, clamped to the exact observed min/max. Relative error is
   bounded by the factor-of-two bucket width, which is plenty for
   latency p50/p90/p99 summaries. *)

type t = {
  name : string;
  lo : float;  (* lower bound of bucket 0; values below land in it *)
  counts : int array;
  mutable total : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let default_buckets = 96

let make ?(lo = 1e-9) ?(buckets = default_buckets) name =
  if lo <= 0.0 then invalid_arg "Histogram.make: lo must be positive";
  if buckets < 1 then invalid_arg "Histogram.make: need at least one bucket";
  { name; lo; counts = Array.make buckets 0; total = 0; sum = 0.0;
    vmin = infinity; vmax = neg_infinity }

let name t = t.name

let bucket_index t v =
  if v < t.lo then 0
  else begin
    (* v/lo = m·2^e with m in [0.5, 1), so v sits in bucket e-1. *)
    let _, e = Float.frexp (v /. t.lo) in
    min (Array.length t.counts - 1) (max 0 (e - 1))
  end

let observe_unchecked t v =
  let i = bucket_index t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let observe t v = if !Control.enabled then observe_unchecked t v

let observe_int t n = if !Control.enabled then observe_unchecked t (float_of_int n)

let count t = t.total

let sum t = t.sum

let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total

let min_value t = if t.total = 0 then 0.0 else t.vmin

let max_value t = if t.total = 0 then 0.0 else t.vmax

let quantile t q =
  if q < 0.0 || q > 1.0 then
    invalid_arg "Histogram.quantile: fraction outside [0, 1]";
  if t.total = 0 then 0.0
  else begin
    let target = Float.max 1.0 (Float.round (q *. float_of_int t.total)) in
    let n = Array.length t.counts in
    let rec walk i cum =
      if i >= n then t.vmax
      else begin
        let cum' = cum + t.counts.(i) in
        if float_of_int cum' >= target && t.counts.(i) > 0 then begin
          let lower = if i = 0 then 0.0 else t.lo *. Float.pow 2.0 (float_of_int i) in
          let upper = t.lo *. Float.pow 2.0 (float_of_int (i + 1)) in
          let frac =
            (target -. float_of_int cum) /. float_of_int t.counts.(i)
          in
          let est = lower +. (frac *. (upper -. lower)) in
          Float.min t.vmax (Float.max t.vmin est)
        end
        else walk (i + 1) cum'
      end
    in
    walk 0 0
  end

let p50 t = quantile t 0.50
let p90 t = quantile t 0.90
let p99 t = quantile t 0.99

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  t.sum <- 0.0;
  t.vmin <- infinity;
  t.vmax <- neg_infinity

(* Snapshots restore unconditionally, like [reset] — they are harness
   operations, not instrumentation. *)
type snapshot = {
  s_counts : int array;
  s_total : int;
  s_sum : float;
  s_vmin : float;
  s_vmax : float;
}

let snapshot t =
  { s_counts = Array.copy t.counts; s_total = t.total; s_sum = t.sum;
    s_vmin = t.vmin; s_vmax = t.vmax }

let restore t s =
  let n = Stdlib.min (Array.length t.counts) (Array.length s.s_counts) in
  Array.fill t.counts 0 (Array.length t.counts) 0;
  Array.blit s.s_counts 0 t.counts 0 n;
  t.total <- s.s_total;
  t.sum <- s.s_sum;
  t.vmin <- s.s_vmin;
  t.vmax <- s.s_vmax

let pp ppf t =
  Format.fprintf ppf
    "%s: n=%d mean=%.6g p50=%.6g p90=%.6g p99=%.6g max=%.6g" t.name t.total
    (mean t) (p50 t) (p90 t) (p99 t) (max_value t)
