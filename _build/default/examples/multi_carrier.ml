(* One VPN across two cooperating providers (§5): the "cross-network
   SLA capability [that] allows the building of VPNs using multiple
   carriers as necessary".

   Run with:  dune exec examples/multi_carrier.exe *)

open Mvpn_core
module Engine = Mvpn_sim.Engine
module Prefix = Mvpn_net.Prefix
module Ipv4 = Mvpn_net.Ipv4
module Flow = Mvpn_net.Flow
module Sla = Mvpn_qos.Sla

let () =
  Printf.printf "== A VPN spanning two carriers ==\n\n";
  let ip2, engine, sites_a, sites_b =
    Interprovider.deploy_vpn ~pops_per_provider:6
      ~policy:(Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched)
      ~vpn:1
      ~sites_a:[(1, Prefix.make (Ipv4.of_octets 10 0 0 0) 16)]
      ~sites_b:[(2, Prefix.make (Ipv4.of_octets 10 1 0 0) 16)]
      ()
  in
  let net = Interprovider.network ip2 in
  let border_a, border_b = Interprovider.border ip2 in
  Printf.printf
    "Carrier A: 6 POPs (AS 65001), carrier B: 6 POPs (AS 65002).\n\
     Border: A node %d <-> B node %d, stitched per-VRF (Option A)\n\
     with %d eBGP UPDATEs.\n\n"
    border_a border_b
    (Interprovider.ebgp_messages ip2);

  let a = List.hd sites_a and b = List.hd sites_b in
  let registry = Traffic.registry engine in
  Network.set_sink net a.Site.ce_node (Traffic.sink registry);
  Network.set_sink net b.Site.ce_node (Traffic.sink registry);
  let emit =
    Traffic.sender registry ~net ~src_node:a.Site.ce_node
      ~flow:(Flow.make ~proto:Flow.Udp ~dst_port:5060 (Site.host a 1)
               (Site.host b 1))
      ~dscp:Mvpn_net.Dscp.ef ~vpn:1
      ~collector:(Traffic.collector registry "voice")
      ()
  in
  Traffic.cbr engine ~start:0.0 ~stop:10.0 ~rate_bps:64_000.0
    ~packet_bytes:200 emit;
  Engine.run engine;
  let r = Traffic.report registry "voice" in
  Printf.printf "Voice across both networks: ";
  Format.printf "%a@." Sla.pp_report r;
  Printf.printf "Voice SLA: %s\n"
    (if Sla.complies Sla.voice_spec r then "holds end to end"
     else "violated: " ^ String.concat "; " (Sla.check Sla.voice_spec r));
  Printf.printf
    "\nThe packet rides carrier A's two-level label stack to the\n\
     border, crosses the inter-AS link as plain IP (DSCP intact),\n\
     and is re-labelled into carrier B's LSPs — each carrier runs its\n\
     own IGP, LDP and MP-BGP, sharing nothing but the per-VRF eBGP\n\
     session.\n"
