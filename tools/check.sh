#!/bin/sh
# Repository gate: everything must build (libraries, binaries, benches,
# examples) and the full test suite must pass. lib/telemetry is built
# with warnings as errors (see lib/telemetry/dune).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== E0 bench smoke (forwarding race + telemetry dump)"
dune exec bench/main.exe -- --only E0 > /dev/null
./_build/default/tools/json_lint.exe < BENCH_telemetry.json
for g in e0.rate.cached_pps e0.rate.uncached_pps; do
  grep -q "\"$g\"" BENCH_telemetry.json || {
    echo "missing gauge $g in BENCH_telemetry.json" >&2
    exit 1
  }
done

echo "== mvpn stats --json well-formed"
stats_json=$(dune exec bin/mvpn.exe -- stats --json --duration 2)
printf '%s' "$stats_json" | ./_build/default/tools/json_lint.exe
for c in fib.cache.hit fib.cache.miss ftn.cache.hit ftn.cache.miss; do
  printf '%s' "$stats_json" | grep -q "\"$c\"" || {
    echo "missing counter $c in mvpn stats --json" >&2
    exit 1
  }
done

echo "ok"
