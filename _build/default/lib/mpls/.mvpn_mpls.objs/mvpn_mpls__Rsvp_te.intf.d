lib/mpls/rsvp_te.mli: Fec Mvpn_sim Plane
