examples/enterprise_extranet.ml: Backbone Hashtbl List Membership Mpls_vpn Mvpn_core Mvpn_net Mvpn_sim Network Option Printf Site String
