lib/net/fib.mli: Format Ipv4 Prefix
