(** Last-value gauge (queue depth, utilization, table size). Mutation is
    a no-op while {!Control} is disabled. *)

type t

val make : string -> t
(** Bare gauge; {!Registry.gauge} is the usual entry point. *)

val name : t -> string

val set : t -> float -> unit

val value : t -> float

val reset : t -> unit

val pp : Format.formatter -> t -> unit
