(* E8 — routing without resource knowledge (§2.2).

   "Without knowledge of the commitments already made by the network,
   it is impossible to route IP flows along paths where resources, and
   therefore QoS, could be guaranteed."

   A random sequence of guaranteed-bandwidth requests arrives; admission
   either routes blind on the IGP shortest path (committing regardless)
   or via CSPF (refusing what cannot be guaranteed). A commitment is
   violated when its path crosses an oversubscribed link. *)

open Mvpn_core
module Topology = Mvpn_sim.Topology
module Rng = Mvpn_sim.Rng
module Rsvp_te = Mvpn_mpls.Rsvp_te
module Plane = Mvpn_mpls.Plane

let run_mode ~admission ~requests ~seed =
  let bb = Backbone.build ~pops:12 () in
  let topo = Backbone.topology bb in
  let plane = Plane.create ~nodes:(Topology.node_count topo) in
  let te = Rsvp_te.create topo plane in
  let pops = Backbone.pops bb in
  let rng = Rng.create seed in
  let accepted = ref 0 in
  for _ = 1 to requests do
    let src = Rng.int rng (Array.length pops) in
    let dst = (src + 1 + Rng.int rng (Array.length pops - 1))
              mod Array.length pops in
    let bw = float_of_int (Rng.int_in rng 2 15) *. 1e6 in
    match
      Rsvp_te.signal te ~admission ~src:pops.(src) ~dst:pops.(dst)
        ~bandwidth:bw
    with
    | Ok _ -> incr accepted
    | Error _ -> ()
  done;
  (* A tunnel's guarantee is violated if any link on its path is
     reserved beyond capacity. *)
  let violated =
    List.length
      (List.filter
         (fun tn ->
            tn.Rsvp_te.up
            && List.exists
                 (fun (l : Topology.link) ->
                    l.Topology.reserved > l.Topology.bandwidth)
                 (List.filter_map
                    (fun (a, b) -> Topology.find_link topo a b)
                    (let rec pairs = function
                       | x :: (y :: _ as rest) -> (x, y) :: pairs rest
                       | [_] | [] -> []
                     in
                     pairs tn.Rsvp_te.path)))
         (Rsvp_te.tunnels te))
  in
  (!accepted, violated, List.length (Rsvp_te.overcommitted_links te))

let run () =
  Tables.heading
    "E8: guaranteed-bandwidth admission, blind SPF vs resource-aware CSPF";
  let widths = [10; 10; 10; 12; 14] in
  Tables.row widths
    ["requests"; "mode"; "accepted"; "violated"; "overcmt links"];
  Tables.rule widths;
  List.iter
    (fun requests ->
       List.iter
         (fun (name, admission) ->
            (* Average over three seeds for stability. *)
            let acc = ref 0 and vio = ref 0 and over = ref 0 in
            List.iter
              (fun seed ->
                 let a, v, o = run_mode ~admission ~requests ~seed in
                 acc := !acc + a;
                 vio := !vio + v;
                 over := !over + o)
              [1; 2; 3];
            Tables.row widths
              [ string_of_int requests; name;
                Printf.sprintf "%.1f" (float_of_int !acc /. 3.0);
                Printf.sprintf "%.1f" (float_of_int !vio /. 3.0);
                Printf.sprintf "%.1f" (float_of_int !over /. 3.0) ])
         [("spf", Rsvp_te.Igp_only); ("cspf", Rsvp_te.Cspf)];
       Tables.rule widths)
    [10; 25; 50; 100];
  Tables.note
    "\nExpected shape: SPF admission accepts everything and, past the\n\
     network's capacity, an increasing share of its commitments sit on\n\
     oversubscribed links (guarantees it cannot keep — the paper's\n\
     §2.2 point). CSPF accepts fewer requests but violates none."
