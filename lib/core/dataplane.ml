module Packet = Mvpn_net.Packet
module Fib = Mvpn_net.Fib
module Prefix = Mvpn_net.Prefix
module Ipv4 = Mvpn_net.Ipv4
module Plane = Mvpn_mpls.Plane
module Lfib = Mvpn_mpls.Lfib
module Fec = Mvpn_mpls.Fec
module Telemetry = Mvpn_telemetry

let m_fib_hit = Telemetry.Registry.counter "fib.cache.hit"
let m_fib_miss = Telemetry.Registry.counter "fib.cache.miss"
let m_ftn_hit = Telemetry.Registry.counter "ftn.cache.hit"
let m_ftn_miss = Telemetry.Registry.counter "ftn.cache.miss"
let m_recompile = Telemetry.Registry.counter "dataplane.recompile"

type verdict = Consumed | Continue

type interceptor = from:int option -> Packet.t -> verdict

type hooks = {
  transmit : from:int -> to_:int -> Packet.t -> unit;
  deliver : node:int -> Packet.t -> unit;
  drop : node:int -> Packet.t -> string -> unit;
  notify_receive : node:int -> from:int option -> Packet.t -> unit;
}

let no_hooks =
  { transmit = (fun ~from:_ ~to_:_ _ -> ());
    deliver = (fun ~node:_ _ -> ());
    drop = (fun ~node:_ _ _ -> ());
    notify_receive = (fun ~node:_ ~from:_ _ -> ()) }

(* Direct-mapped dst → LPM-result cache. Slot count is a power of two;
   a slot holds the address it answers for and the (possibly negative)
   lookup result. 512 slots cover the working sets of the workloads
   here; collisions just re-walk the trie. *)
let cache_slots = 512

let slot_of addr = (addr * 0x9E3779B1) lsr 16 land (cache_slots - 1)

let no_key = -1

type compiled = {
  c_fib_gen : int;
  c_lfib_gen : int;
  c_ftn_gen : int;
  c_icept_gen : int;
  dispatch : from:int option -> Packet.t -> bool;  (* true = consumed *)
  fib_keys : int array;  (* Ipv4.to_int of the cached dst; no_key = empty *)
  fib_vals : (Prefix.t * Fib.route) option array;
  ftn_memo : (Fec.t, Plane.ftn_entry option) Hashtbl.t;
}

type t = {
  plane : Plane.t;
  fibs : Fib.t array;
  mutable hooks : hooks;
  mutable cache : bool;
  mutable auto_ftn : bool;
  interceptors : interceptor list array;
  icept_gens : int array;
  compiled : compiled option array;
  mutable recompiles : int;
}

let create ?(cache = true) ~nodes ~plane ~fibs () =
  { plane; fibs; hooks = no_hooks; cache; auto_ftn = false;
    interceptors = Array.make nodes [];
    icept_gens = Array.make nodes 0;
    compiled = Array.make nodes None;
    recompiles = 0 }

let set_hooks t hooks = t.hooks <- hooks

let cache_enabled t = t.cache

let set_cache t flag =
  if t.cache <> flag then begin
    t.cache <- flag;
    Array.fill t.compiled 0 (Array.length t.compiled) None
  end

let set_auto_ftn t flag = t.auto_ftn <- flag

let bump_interceptors t node chain =
  t.interceptors.(node) <- chain;
  t.icept_gens.(node) <- t.icept_gens.(node) + 1

let set_interceptor t node f = bump_interceptors t node [f]

let add_interceptor t node f =
  bump_interceptors t node (f :: t.interceptors.(node))

let clear_interceptor t node = bump_interceptors t node []

let interceptor_generation t node = t.icept_gens.(node)

let recompiles t = t.recompiles

(* Fold the chain into one dispatcher. Interceptors run in list order
   (prepend order) and the first [Consumed] wins — the same contract
   the per-packet [List.exists] used to implement. *)
let compile_dispatch = function
  | [] -> fun ~from:_ _ -> false
  | [f] -> fun ~from p -> f ~from p = Consumed
  | chain ->
    let arr = Array.of_list chain in
    let n = Array.length arr in
    fun ~from p ->
      let rec go i = i < n && (arr.(i) ~from p = Consumed || go (i + 1)) in
      go 0

let compile t node =
  t.recompiles <- t.recompiles + 1;
  Telemetry.Counter.incr m_recompile;
  if !Telemetry.Control.enabled then
    Telemetry.Event_log.record
      (Telemetry.Registry.events ())
      (Telemetry.Event_log.Recompile { node });
  let c =
    { c_fib_gen = Fib.generation t.fibs.(node);
      c_lfib_gen = Lfib.generation (Plane.lfib t.plane node);
      c_ftn_gen = Plane.ftn_generation t.plane node;
      c_icept_gen = t.icept_gens.(node);
      dispatch = compile_dispatch t.interceptors.(node);
      fib_keys = (if t.cache then Array.make cache_slots no_key else [||]);
      fib_vals = (if t.cache then Array.make cache_slots None else [||]);
      ftn_memo = Hashtbl.create (if t.cache then 16 else 1) }
  in
  t.compiled.(node) <- Some c;
  c

(* The per-packet staleness check: four int comparisons against the
   live generations. Any mismatch throws the node's compiled state
   away — caches never serve an entry older than the tables. *)
let state t node =
  match t.compiled.(node) with
  | Some c
    when c.c_fib_gen = Fib.generation t.fibs.(node)
      && c.c_icept_gen = t.icept_gens.(node)
      && c.c_lfib_gen = Lfib.generation (Plane.lfib t.plane node)
      && c.c_ftn_gen = Plane.ftn_generation t.plane node -> c
  | Some _ | None -> compile t node

let fib_lookup t c node dst =
  if not t.cache then Fib.lookup t.fibs.(node) dst
  else begin
    let key = Ipv4.to_int dst in
    let slot = slot_of key in
    if c.fib_keys.(slot) = key then begin
      Telemetry.Counter.incr m_fib_hit;
      c.fib_vals.(slot)
    end else begin
      Telemetry.Counter.incr m_fib_miss;
      let r = Fib.lookup t.fibs.(node) dst in
      c.fib_keys.(slot) <- key;
      c.fib_vals.(slot) <- r;
      r
    end
  end

let ftn_lookup t c node fec =
  if not t.cache then Plane.find_ftn t.plane node fec
  else
    match Hashtbl.find_opt c.ftn_memo fec with
    | Some r ->
      Telemetry.Counter.incr m_ftn_hit;
      r
    | None ->
      Telemetry.Counter.incr m_ftn_miss;
      let r = Plane.find_ftn t.plane node fec in
      Hashtbl.add c.ftn_memo fec r;
      r

let find_ftn t node fec = ftn_lookup t (state t node) node fec

(* Plain IP forwarding at [node]: cached FIB lookup on the visible
   destination, local delivery, optional FTN label push, or relay.
   [forward_ip_c] takes the node's already-validated compiled state so
   {!receive} pays the generation check once per packet, not twice;
   the interceptor contract makes that safe — an interceptor that
   declines ([Continue]) must not retarget the node's tables. *)
let forward_ip_c t c node packet =
  let hdr = Packet.visible_header packet in
  match fib_lookup t c node hdr.Packet.dst with
  | None -> t.hooks.drop ~node packet "no-route"
  | Some (_, route) when route.Fib.next_hop = Fib.local_delivery ->
    t.hooks.deliver ~node packet
  | Some (prefix, route) ->
    if hdr.Packet.ttl <= 1 then t.hooks.drop ~node packet "ip-ttl"
    else begin
      hdr.Packet.ttl <- hdr.Packet.ttl - 1;
      let pushed =
        t.auto_ftn
        && (match ftn_lookup t c node (Fec.Prefix_fec prefix) with
            | Some e ->
              Packet.push_label packet ~label:e.Plane.push
                ~exp:(Mvpn_net.Dscp.to_exp (Packet.visible_dscp packet))
                ~ttl:hdr.Packet.ttl;
              t.hooks.transmit ~from:node ~to_:e.Plane.next_hop packet;
              true
            | None -> false)
      in
      if not pushed then
        t.hooks.transmit ~from:node ~to_:route.Fib.next_hop packet
    end

let forward_ip t node packet = forward_ip_c t (state t node) node packet

let receive t node ~from packet =
  t.hooks.notify_receive ~node ~from packet;
  let c = state t node in
  if not (c.dispatch ~from packet) then begin
    if Packet.labelled packet then begin
      (* Packed step verdict: an immediate int, no constructor block
         per label hop (see {!Lfib.step_packed}). *)
      let r = Lfib.step_packed (Plane.lfib t.plane node) packet in
      let tag = Lfib.packed_tag r in
      if tag = Lfib.tag_forward then
        t.hooks.transmit ~from:node ~to_:(Lfib.packed_arg r) packet
      else if tag = Lfib.tag_ip_continue then begin
        let nh = Lfib.packed_arg r in
        if nh = Lfib.local then forward_ip_c t c node packet
        else t.hooks.transmit ~from:node ~to_:nh packet
      end
      else if tag = Lfib.tag_no_binding then
        t.hooks.drop ~node packet "no-label-binding"
      else t.hooks.drop ~node packet "label-ttl"
    end
    else forward_ip_c t c node packet
  end
