module Topology = Mvpn_sim.Topology
module Spf = Mvpn_routing.Spf

type demand = { src : int; dst : int; bandwidth : float }

type placement = {
  topo : Topology.t;
  load : (int, float) Hashtbl.t;  (* link id -> planned bps *)
  mutable routed : int;
  mutable unrouted : int;
}

let fresh topo =
  { topo; load = Hashtbl.create 64; routed = 0; unrouted = 0 }

let link_load p (l : Topology.link) =
  Option.value ~default:0.0 (Hashtbl.find_opt p.load l.Topology.id)

let add_load p (l : Topology.link) bw =
  Hashtbl.replace p.load l.Topology.id (link_load p l +. bw)

let place p path bw =
  let rec go = function
    | a :: (b :: _ as rest) ->
      (match Topology.find_link p.topo a b with
       | Some l -> add_load p l bw
       | None -> ());
      go rest
    | [_] | [] -> ()
  in
  go path;
  p.routed <- p.routed + 1

let route_spf topo demands =
  let p = fresh topo in
  List.iter
    (fun d ->
       match Spf.shortest_path topo ~src:d.src ~dst:d.dst with
       | Some path -> place p path d.bandwidth
       | None -> p.unrouted <- p.unrouted + 1)
    demands;
  p

(* ECMP: split each demand equally across all shortest next hops at
   every node of the shortest-path DAG toward the destination. Distances
   are computed from the destination (duplex links, symmetric costs). *)
let route_ecmp topo demands =
  let p = fresh topo in
  List.iter
    (fun d ->
       let tree = Spf.dijkstra topo ~src:d.dst in
       if not (Float.is_finite tree.Spf.dist.(d.src)) then
         p.unrouted <- p.unrouted + 1
       else begin
         p.routed <- p.routed + 1;
         let n = Topology.node_count topo in
         let flow = Array.make n 0.0 in
         flow.(d.src) <- d.bandwidth;
         (* Upstream nodes first: larger distance to the destination. *)
         let order =
           List.sort
             (fun a b -> Float.compare tree.Spf.dist.(b) tree.Spf.dist.(a))
             (List.init n Fun.id)
         in
         List.iter
           (fun v ->
              if flow.(v) > 0.0 && v <> d.dst then begin
                let next_hops =
                  List.filter
                    (fun (u, (l : Topology.link)) ->
                       l.Topology.up
                       && Float.abs
                            (tree.Spf.dist.(u)
                             +. float_of_int l.Topology.cost
                             -. tree.Spf.dist.(v))
                          < 1e-9)
                    (Topology.neighbors topo v)
                in
                match next_hops with
                | [] -> ()  (* cannot happen on a finite-distance node *)
                | nhs ->
                  let share = flow.(v) /. float_of_int (List.length nhs) in
                  List.iter
                    (fun (u, l) ->
                       add_load p l share;
                       flow.(u) <- flow.(u) +. share)
                    nhs
              end)
           order
       end)
    demands;
  p

let route_capacity_aware ?(headroom = 1.0) topo demands =
  let p = fresh topo in
  List.iter
    (fun d ->
       let usable (l : Topology.link) =
         l.Topology.up
         && link_load p l +. d.bandwidth
            <= l.Topology.bandwidth *. headroom
       in
       match Spf.shortest_path ~usable topo ~src:d.src ~dst:d.dst with
       | Some path -> place p path d.bandwidth
       | None -> p.unrouted <- p.unrouted + 1)
    demands;
  p

let routed p = p.routed

let unrouted p = p.unrouted

let utilization p (l : Topology.link) =
  if l.Topology.bandwidth <= 0.0 then 0.0
  else link_load p l /. l.Topology.bandwidth

let max_utilization p =
  List.fold_left
    (fun acc l -> Float.max acc (utilization p l))
    0.0 (Topology.links p.topo)

let hot_links ?(threshold = 1.0) p =
  List.filter_map
    (fun l ->
       let u = utilization p l in
       if u > threshold then Some (l, u) else None)
    (Topology.links p.topo)
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let upgrades_needed p =
  List.filter_map
    (fun (l : Topology.link) ->
       let excess = link_load p l -. l.Topology.bandwidth in
       if excess > 0.0 then Some (l, excess) else None)
    (Topology.links p.topo)
