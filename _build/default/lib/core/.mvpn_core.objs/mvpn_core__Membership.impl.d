lib/core/membership.ml: Int List Printf Site
