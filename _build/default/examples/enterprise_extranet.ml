(* Enterprise extranet: two companies with identical private address
   plans share one provider backbone, a partner site joins one VPN
   ad hoc, and a site later leaves — the §1 motivation ("linking
   customers and partners into extranets on an ad-hoc basis") plus the
   §4 service procedures (discovery, reachability, separation).

   Run with:  dune exec examples/enterprise_extranet.exe *)

open Mvpn_core
module Engine = Mvpn_sim.Engine
module Prefix = Mvpn_net.Prefix
module Flow = Mvpn_net.Flow
module Packet = Mvpn_net.Packet

let pfx = Prefix.of_string_exn

let () =
  Printf.printf "== Enterprise extranet over one MPLS backbone ==\n\n";
  let bb = Backbone.build ~pops:8 () in

  (* Both companies number their sites from the same RFC 1918 space —
     deliberately colliding. The partner site is attached up front (the
     access circuit exists) but joins the VPN later. *)
  let acme_hq = Backbone.attach_site bb ~id:101 ~name:"acme-hq" ~vpn:1
      ~prefix:(pfx "10.0.0.0/16") ~pop:0 in
  let acme_plant = Backbone.attach_site bb ~id:102 ~name:"acme-plant" ~vpn:1
      ~prefix:(pfx "10.1.0.0/16") ~pop:4 in
  let globex_hq = Backbone.attach_site bb ~id:201 ~name:"globex-hq" ~vpn:2
      ~prefix:(pfx "10.0.0.0/16") ~pop:2 in
  let globex_lab = Backbone.attach_site bb ~id:202 ~name:"globex-lab" ~vpn:2
      ~prefix:(pfx "10.1.0.0/16") ~pop:6 in
  let partner = Backbone.attach_site bb ~id:103 ~name:"partner" ~vpn:1
      ~prefix:(pfx "10.9.0.0/16") ~pop:5 in

  let engine = Engine.create () in
  let net = Network.create engine (Backbone.topology bb) in
  let initial = [acme_hq; acme_plant; globex_hq; globex_lab] in
  let vpn = Mpls_vpn.deploy ~net ~backbone:bb ~sites:initial () in

  Printf.printf "Two VPNs deployed; both number their sites 10.0/16, 10.1/16.\n";

  (* Discovery is scoped: Acme can find its own sites, never Globex's. *)
  let seen = Mpls_vpn.membership vpn in
  let acme_view = Membership.discover seen ~asking:acme_hq in
  Printf.printf "Acme HQ discovers %d peer site(s): %s\n"
    (List.length acme_view)
    (String.concat ", " (List.map (fun (s : Site.t) -> s.Site.name) acme_view));

  (* Deliveries, keyed by which sink fired. *)
  let deliveries = Hashtbl.create 8 in
  let watch (s : Site.t) =
    Network.set_sink net s.Site.ce_node (fun p ->
        let key = (s.Site.name, p.Packet.vpn) in
        Hashtbl.replace deliveries key
          (1 + Option.value ~default:0 (Hashtbl.find_opt deliveries key)))
  in
  List.iter watch (partner :: initial);

  let send (src : Site.t) (dst : Site.t) =
    let p =
      Packet.make ~vpn:src.Site.vpn ~now:(Engine.now engine)
        (Flow.make (Site.host src 1) (Site.host dst 1))
    in
    Network.inject net src.Site.ce_node p
  in

  (* Same destination address, two different VPNs: each packet lands at
     its own company's site. *)
  send acme_hq acme_plant;
  send globex_hq globex_lab;
  Engine.run engine;
  Printf.printf
    "\nBoth companies sent to 10.1.0.1. Deliveries:\n";
  Hashtbl.iter
    (fun (name, vpn_id) n ->
       Printf.printf "  %-12s got %d packet(s) of VPN %s\n" name n
         (match vpn_id with Some v -> string_of_int v | None -> "?"))
    deliveries;

  (* The partner joins Acme's VPN ad hoc: one control-plane action. *)
  Printf.printf "\nPartner site joins VPN 1 (ad-hoc extranet)...\n";
  Mpls_vpn.add_site vpn partner;
  send acme_hq partner;
  send partner acme_plant;
  Engine.run engine;
  Printf.printf "Partner reachable both ways: %b\n"
    (Hashtbl.mem deliveries ("partner", Some 1)
     && Hashtbl.mem deliveries ("acme-plant", Some 1));

  (* And leaves again: routes withdraw everywhere. *)
  Printf.printf "\nPartner leaves VPN 1...\n";
  ignore (Mpls_vpn.remove_site vpn ~site_id:103);
  let before = Network.drops net in
  send acme_hq partner;
  Engine.run engine;
  Printf.printf "Traffic to the departed partner is refused: %b\n"
    (Network.drops net > before);

  let m = Mpls_vpn.metrics vpn in
  Printf.printf
    "\nFinal state: %d sites in %d VPNs, %d VPNv4 routes, %d VRFs,\n\
     %d provisioning touches total (one per site event).\n"
    m.Mpls_vpn.sites m.Mpls_vpn.vpns m.Mpls_vpn.vpnv4_routes
    m.Mpls_vpn.vrf_count m.Mpls_vpn.provisioning_touches
