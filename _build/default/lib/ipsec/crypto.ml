type cipher = Null | Des | Des3

let cipher_to_string = function
  | Null -> "null"
  | Des -> "des"
  | Des3 -> "3des"

(* Software DES on era-typical CPE hardware: ~20 MB/s, with ~10 us of
   per-packet key schedule / context switching. 3DES runs the block
   function three times. *)
let des_bytes_per_second = 20e6

let per_packet_overhead = function
  | Null -> 0.0
  | Des -> 10e-6
  | Des3 -> 12e-6

let per_byte_cost = function
  | Null -> 0.0
  | Des -> 1.0 /. des_bytes_per_second
  | Des3 -> 3.0 /. des_bytes_per_second

let processing_delay cipher ~bytes =
  per_packet_overhead cipher +. (float_of_int bytes *. per_byte_cost cipher)

let throughput_bps = function
  | Null -> infinity
  | Des -> des_bytes_per_second *. 8.0
  | Des3 -> des_bytes_per_second *. 8.0 /. 3.0

(* 16-round Feistel network on a 64-bit block. The round function mixes
   the half with a per-round subkey using multiply-xor-shift — ample for
   making ciphertext unrecognizable, which is all the model needs. *)
let rounds = 16

let subkey ~key round =
  (* Full 64-bit avalanche (splitmix64 finalizer) so that any key-bit
     difference reaches every subkey. *)
  let k =
    Int64.add key (Int64.mul (Int64.of_int (round + 1)) 0x9E3779B97F4A7C15L)
  in
  let k =
    Int64.mul (Int64.logxor k (Int64.shift_right_logical k 30))
      0xBF58476D1CE4E5B9L
  in
  let k =
    Int64.mul (Int64.logxor k (Int64.shift_right_logical k 27))
      0x94D049BB133111EBL
  in
  Int64.to_int32 (Int64.logxor k (Int64.shift_right_logical k 31))

let round_fn half k =
  let v = Int32.add half k in
  let v = Int32.mul v 0x85EBCA6Bl in
  let v = Int32.logxor v (Int32.shift_right_logical v 13) in
  let v = Int32.mul v 0xC2B2AE35l in
  Int32.logxor v (Int32.shift_right_logical v 16)

let split block =
  ( Int64.to_int32 (Int64.shift_right_logical block 32),
    Int64.to_int32 block )

let join l r =
  Int64.logor
    (Int64.shift_left (Int64.logand (Int64.of_int32 l) 0xFFFFFFFFL) 32)
    (Int64.logand (Int64.of_int32 r) 0xFFFFFFFFL)

let encrypt_block ~key block =
  let l = ref (fst (split block)) and r = ref (snd (split block)) in
  for i = 0 to rounds - 1 do
    let l' = !r in
    let r' = Int32.logxor !l (round_fn !r (subkey ~key i)) in
    l := l';
    r := r'
  done;
  join !l !r

let decrypt_block ~key block =
  let l = ref (fst (split block)) and r = ref (snd (split block)) in
  for i = rounds - 1 downto 0 do
    let r' = !l in
    let l' = Int32.logxor !r (round_fn !l (subkey ~key i)) in
    l := l';
    r := r'
  done;
  join !l !r

let block_bytes = 8

let get_block b off =
  let v = ref 0L in
  for i = 0 to block_bytes - 1 do
    let byte =
      if off + i < Bytes.length b then Char.code (Bytes.get b (off + i))
      else 0
    in
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int byte)
  done;
  !v

let set_block b off v =
  for i = 0 to block_bytes - 1 do
    let byte =
      Int64.to_int
        (Int64.logand (Int64.shift_right_logical v ((7 - i) * 8)) 0xFFL)
    in
    Bytes.set b (off + i) (Char.chr byte)
  done

let encrypt_bytes ~key input =
  let padded = (Bytes.length input + block_bytes - 1) / block_bytes in
  let out = Bytes.make (padded * block_bytes) '\000' in
  for blk = 0 to padded - 1 do
    set_block out (blk * block_bytes)
      (encrypt_block ~key (get_block input (blk * block_bytes)))
  done;
  out

let decrypt_bytes ~key input =
  if Bytes.length input mod block_bytes <> 0 then
    invalid_arg "Crypto.decrypt_bytes: length not a block multiple";
  let out = Bytes.make (Bytes.length input) '\000' in
  for blk = 0 to (Bytes.length input / block_bytes) - 1 do
    set_block out (blk * block_bytes)
      (decrypt_block ~key (get_block input (blk * block_bytes)))
  done;
  out
