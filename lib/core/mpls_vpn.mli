(** The MPLS VPN service (§4–§5): the paper's architecture, deployed.

    [deploy] runs the full provisioning pipeline on a backbone:

    + membership: every site joins its VPN ({!Membership});
    + IGP: OSPF floods PE loopbacks and converges ({!Mvpn_routing.Ospf});
    + label distribution: LDP binds labels to every PE loopback FEC,
      hop by hop with PHP ({!Mvpn_mpls.Ldp});
    + VRFs: one per (PE, VPN) with RD/RT, local site routes installed,
      and a VPN label allocated per site route in the PE's label space;
    + reachability: MP-BGP exports each VRF's routes (label
      piggybacked), propagates full-mesh or via route reflector, and
      imports by route target ({!Mvpn_routing.Mpbgp});
    + data plane: an interceptor at each PE classifies packets arriving
      from attached CEs into their VRF, maps DSCP→EXP, pushes the
      two-level label stack, and hands the packet to the LSP; the
      egress PE's LFIB pops the VPN label straight to the destination
      CE;
    + optionally, PE–PE traffic rides RSVP-TE tunnels instead of LDP
      LSPs ([use_te]).

    Isolation is structural: forwarding between sites uses only VRF
    lookups and labels, never the global FIB, so overlapping customer
    prefixes cannot collide.

    Group communication (the abstract's motivating need): a packet sent
    to a class-D address replicates at the ingress PE, one copy per
    member site of the VPN — except the sender's own site — each copy
    forwarded exactly like unicast with the sender's DSCP intact.
    Replication is intra-provider: it never crosses an Option-A border
    (inter-AS multicast VPN needs P2MP machinery beyond this model). *)

type t

val deploy :
  ?mechanism:Membership.mechanism ->
  ?session_mode:Mvpn_routing.Mpbgp.session_mode ->
  ?use_te:bool ->
  ?te_bandwidth:float ->
  ?map_dscp_to_exp:bool ->
  ?domain:(int -> bool) ->
  net:Network.t -> backbone:Backbone.t -> sites:Site.t list -> unit -> t
(** [te_bandwidth] is the per-PE-pair reservation when [use_te]
    (default 1 Mb/s). [map_dscp_to_exp] (default true) is the §5 edge
    function; turning it off sends every label with EXP 0, so the core
    cannot differentiate — the E6 comparison point. [domain] (default:
    all nodes) bounds this provider's IGP and label distribution to its
    own routers — required when several carriers share one simulated
    internetwork (see {!Interprovider}). *)

val membership : t -> Membership.t
val mpbgp : t -> Mvpn_routing.Mpbgp.t
val ospf : t -> Mvpn_routing.Ospf.t
val ldp : t -> Mvpn_mpls.Ldp.t
val te : t -> Mvpn_mpls.Rsvp_te.t option

val set_ip_fallback : t -> bool -> unit
(** Graceful degradation toggle (default off). When on and no labelled
    transport reaches the egress PE — FTN missing, or its egress link
    down with no usable fast-reroute bypass — the ingress PE tunnels
    the VPN label inside a best-effort IP packet between PE loopbacks
    (MPLS-in-IP, RFC 4023 in spirit; the VPN label rides the GRE key)
    instead of dropping. The egress PE's interceptor decapsulates and
    the VPN label pops to the CE as usual. Degraded traffic is
    best-effort by construction (the outer header carries BE, the
    tenant's class is invisible to the core) and is always visible:
    [resilience.fallback.packets]/[engaged]/[restored] counters and
    one [Fallback_engaged]/[Lsp_restored] event pair per degraded
    (ingress, egress) episode. *)

val ip_fallback : t -> bool

val vrf : t -> pe:int -> vpn:int -> Vrf.t option

val vrfs : t -> Vrf.t list

val add_site : t -> Site.t -> unit
(** Join a new site after deployment: updates membership, VRFs, BGP and
    the data plane. The site's CE link must already exist. *)

val remove_site : t -> site_id:int -> bool
(** A site leaves: withdraw routes, drop VRF state. *)

(** {2 Inter-provider borders (Option A, §5 "cross-network SLA")} *)

val attach_vrf_neighbor : t -> pe:int -> vpn:int -> neighbor:int -> unit
(** Treat packets arriving at [pe] from the adjacent node [neighbor]
    (the other carrier's border router) as belonging to [vpn]'s VRF —
    the other provider looks like a CE. Creates the VRF if absent. *)

val add_external_route :
  t -> pe:int -> vpn:int -> prefix:Mvpn_net.Prefix.t -> via:int ->
  site_id:int -> unit
(** Install a prefix learned over the border (per-VRF eBGP) reachable
    as plain IP via [neighbor], allocate a VPN label for it at the
    border PE, and redistribute it to this provider's other PEs through
    MP-BGP. [site_id] tags the export for later withdrawal. *)

val reconverge : t -> int
(** After a topology change: re-run OSPF, refresh LDP next hops,
    re-signal broken TE tunnels, refresh PE next-hop caches. Returns
    OSPF flooding rounds. *)

(** Provisioning-state metrics (experiment E1). *)
type state_metrics = {
  sites : int;
  vpns : int;
  bgp_sessions : int;
  vpnv4_routes : int;  (** announcements in the BGP system *)
  lfib_entries : int;  (** network-wide label state *)
  labels_allocated : int;
  vrf_count : int;
  control_messages : int;  (** membership + BGP + LDP message total *)
  provisioning_touches : int;
      (** operator actions: one VRF binding per site (the "adds new
          site = configure one PE" claim) *)
}

val metrics : t -> state_metrics
