lib/mpls/plane.ml: Array Fec Hashtbl Label Lfib Printf
