(* Fixed-capacity (sim_time, value) series with 2x decimation.

   Storage discipline follows counter.ml: the handle is shared across
   domains, the samples live in domain-local state, so concurrent shard
   domains append to private buffers and a harness folds them together
   with [Registry.snapshot] + [Registry.absorb].

   Residency is bounded by construction. The buffer holds at most
   [capacity] samples; when an accepted sample would overflow it, the
   buffer is compacted to its even-indexed half and the acceptance
   stride doubles, so a run of any length keeps at most [capacity]
   samples at stride 2^level. The accepted set is always exactly the
   arrivals at indices {k * stride}, which makes the retained sample
   times a pure function of the arrival sequence: every shard's sampler
   sees the same arrival sequence, so every shard retains the same
   times and the cross-domain merge lines up sample-for-sample. *)

type scope = Sim | Host

type state = {
  mutable times : floatarray;
  mutable values : floatarray;
  mutable count : int;
  mutable stride : int;  (* accept 1 arrival in [stride]; 2^level *)
  mutable arrivals : int;
}

type t = {
  name : string;
  capacity : int;
  scope : scope;
  key : state Domain.DLS.key;
}

let default_capacity = 512

let fresh_state capacity () =
  { times = Float.Array.create capacity;
    values = Float.Array.create capacity;
    count = 0; stride = 1; arrivals = 0 }

let make ?(capacity = default_capacity) ?(scope = Sim) name =
  if capacity < 2 || capacity land 1 <> 0 then
    invalid_arg "Timeseries.make: capacity must be even and >= 2";
  { name; capacity; scope; key = Domain.DLS.new_key (fresh_state capacity) }

let name t = t.name

let capacity t = t.capacity

let scope t = t.scope

let state t = Domain.DLS.get t.key

(* Keep the even-indexed half. Arrivals retained before: {k * stride};
   after: {k * 2 * stride}. The arrival that triggered the compaction
   has index [capacity * stride], a multiple of the doubled stride
   (capacity is even), so it is always accepted right after. *)
let decimate s =
  let half = s.count / 2 in
  for i = 0 to half - 1 do
    Float.Array.set s.times i (Float.Array.get s.times (2 * i));
    Float.Array.set s.values i (Float.Array.get s.values (2 * i))
  done;
  s.count <- half;
  s.stride <- s.stride * 2

let add t ~time v =
  if !Control.enabled then begin
    let s = state t in
    let a = s.arrivals in
    s.arrivals <- a + 1;
    if a land (s.stride - 1) = 0 then begin
      (* [absorb] can leave more than [capacity] merged samples (shards
         with disjoint sample times); halve until the append fits. *)
      while s.count >= t.capacity do decimate s done;
      Float.Array.set s.times s.count time;
      Float.Array.set s.values s.count v;
      s.count <- s.count + 1
    end
  end

let length t = (state t).count

let level t =
  let s = state t in
  let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
  log2 s.stride 0

let get t i =
  let s = state t in
  if i < 0 || i >= s.count then invalid_arg "Timeseries.get";
  (Float.Array.get s.times i, Float.Array.get s.values i)

let iter t f =
  let s = state t in
  for i = 0 to s.count - 1 do
    f (Float.Array.get s.times i) (Float.Array.get s.values i)
  done

let samples t =
  let s = state t in
  Array.init s.count (fun i ->
      (Float.Array.get s.times i, Float.Array.get s.values i))

let reset t =
  let s = state t in
  s.count <- 0;
  s.stride <- 1;
  s.arrivals <- 0

(* --- snapshot / restore / absorb --------------------------------------- *)

type snapshot = {
  snap_times : float array;
  snap_values : float array;
  snap_stride : int;
  snap_arrivals : int;
}

let snapshot t =
  let s = state t in
  { snap_times = Array.init s.count (Float.Array.get s.times);
    snap_values = Array.init s.count (Float.Array.get s.values);
    snap_stride = s.stride;
    snap_arrivals = s.arrivals }

let ensure_room s n =
  if Float.Array.length s.times < n then begin
    let cap = ref (Float.Array.length s.times) in
    while !cap < n do cap := !cap * 2 done;
    let times = Float.Array.create !cap in
    let values = Float.Array.create !cap in
    for i = 0 to s.count - 1 do
      Float.Array.set times i (Float.Array.get s.times i);
      Float.Array.set values i (Float.Array.get s.values i)
    done;
    s.times <- times;
    s.values <- values
  end

let restore t snap =
  let s = state t in
  let n = Array.length snap.snap_times in
  s.count <- 0;
  ensure_room s n;
  for i = 0 to n - 1 do
    Float.Array.set s.times i snap.snap_times.(i);
    Float.Array.set s.values i snap.snap_values.(i)
  done;
  s.count <- n;
  s.stride <- snap.snap_stride;
  s.arrivals <- snap.snap_arrivals

(* Union merge keyed on exact sample time, values summed on equal
   times. Associative and commutative (merge-sum of time->value maps),
   so shard partials fold in any order into one deterministic series.
   Shards sampling the same schedule carry identical time sets and the
   merge never grows past [capacity]; disjoint sets are kept whole here
   (bounded by K * capacity) and re-decimated by the next [add]. *)
let absorb t snap =
  let s = state t in
  let n2 = Array.length snap.snap_times in
  if n2 > 0 then begin
    let n1 = s.count in
    let t1 = Array.init n1 (Float.Array.get s.times) in
    let v1 = Array.init n1 (Float.Array.get s.values) in
    ensure_room s (n1 + n2);
    let i = ref 0 and j = ref 0 and k = ref 0 in
    let put time v =
      Float.Array.set s.times !k time;
      Float.Array.set s.values !k v;
      incr k
    in
    while !i < n1 && !j < n2 do
      let ta = t1.(!i) and tb = snap.snap_times.(!j) in
      if ta = tb then begin
        put ta (v1.(!i) +. snap.snap_values.(!j));
        incr i; incr j
      end
      else if ta < tb then begin put ta v1.(!i); incr i end
      else begin put tb snap.snap_values.(!j); incr j end
    done;
    while !i < n1 do put t1.(!i) v1.(!i); incr i done;
    while !j < n2 do put snap.snap_times.(!j) snap.snap_values.(!j); incr j done;
    s.count <- !k;
    s.stride <- Stdlib.max s.stride snap.snap_stride;
    s.arrivals <- Stdlib.max s.arrivals snap.snap_arrivals
  end

let pp ppf t =
  Format.fprintf ppf "%s: %d samples (stride %d)" t.name (length t)
    (state t).stride
