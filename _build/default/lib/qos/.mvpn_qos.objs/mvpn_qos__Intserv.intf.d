lib/qos/intserv.mli: Mvpn_net Mvpn_sim
