type t = {
  shards : int;
  horizon : float;
  inbound : (int * float) list array;
  la : bool;
  mutex : Mutex.t;
  changed : Condition.t;
  pubs : float array;  (* guarded by [mutex] *)
  nexts : float array;  (* barrier-disciplined: write own slot, barrier,
                           read all, barrier *)
  mutable arrived : int;
  mutable phase : bool;
}

let create ~shards ~horizon ~inbound =
  if shards < 1 then invalid_arg "Clock.create: shards < 1";
  if Array.length inbound <> shards then
    invalid_arg "Clock.create: inbound length <> shards";
  Array.iter
    (List.iter (fun (j, _) ->
         if j < 0 || j >= shards then
           invalid_arg "Clock.create: bad source shard"))
    inbound;
  let la = Array.for_all (List.for_all (fun (_, d) -> d > 0.0)) inbound in
  { shards; horizon; inbound; la;
    mutex = Mutex.create (); changed = Condition.create ();
    pubs = Array.make shards 0.0; nexts = Array.make shards infinity;
    arrived = 0; phase = false }

let horizon t = t.horizon

let lookahead t = t.la

let bound_locked t shard =
  List.fold_left
    (fun acc (j, d) -> Float.min acc (t.pubs.(j) +. d))
    t.horizon t.inbound.(shard)

let next_bound t ~shard ~completed =
  Mutex.lock t.mutex;
  let rec wait () =
    let b = bound_locked t shard in
    if b > completed || b >= t.horizon then b
    else begin
      Condition.wait t.changed t.mutex;
      wait ()
    end
  in
  let b = wait () in
  Mutex.unlock t.mutex;
  b

let publish t ~shard v =
  Mutex.lock t.mutex;
  if v > t.pubs.(shard) then begin
    t.pubs.(shard) <- v;
    Condition.broadcast t.changed
  end;
  Mutex.unlock t.mutex

let barrier t =
  Mutex.lock t.mutex;
  let sense = t.phase in
  t.arrived <- t.arrived + 1;
  if t.arrived = t.shards then begin
    t.arrived <- 0;
    t.phase <- not t.phase;
    Condition.broadcast t.changed
  end
  else
    while t.phase = sense do
      Condition.wait t.changed t.mutex
    done;
  Mutex.unlock t.mutex

let min_next t ~shard v =
  t.nexts.(shard) <- v;
  barrier t;
  let m = Array.fold_left Float.min infinity t.nexts in
  (* Second rendezvous: nobody overwrites [nexts] for the following
     round until everyone has read this one. *)
  barrier t;
  m
