open Mvpn_telemetry

(* Every test runs against the process-global registry and control
   flag, so each starts from a clean slate and leaves telemetry off. *)
let wrap f () =
  Registry.reset ();
  Control.disable ();
  Fun.protect ~finally:(fun () ->
      Registry.reset ();
      Control.disable ())
    f

(* --- Control ----------------------------------------------------------- *)

let test_control_scoping () =
  Alcotest.(check bool) "starts off" false (Control.is_enabled ());
  Control.with_enabled (fun () ->
      Alcotest.(check bool) "on inside" true (Control.is_enabled ());
      Control.with_disabled (fun () ->
          Alcotest.(check bool) "nested off" false (Control.is_enabled ()));
      Alcotest.(check bool) "restored on" true (Control.is_enabled ()));
  Alcotest.(check bool) "restored off" false (Control.is_enabled ())

let test_control_restores_on_exception () =
  (try Control.with_enabled (fun () -> failwith "boom") with
   | Failure _ -> ());
  Alcotest.(check bool) "off after raise" false (Control.is_enabled ())

(* --- Counter ----------------------------------------------------------- *)

let test_counter_gated () =
  let c = Counter.make "c" in
  Counter.incr c;
  Counter.add c 10;
  Alcotest.(check int) "no-op while disabled" 0 (Counter.value c);
  Control.with_enabled (fun () ->
      Counter.incr c;
      Counter.incr c;
      Counter.add c 5);
  Alcotest.(check int) "counts while enabled" 7 (Counter.value c);
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.value c)

(* --- Gauge ------------------------------------------------------------- *)

let test_gauge_gated () =
  let g = Gauge.make "g" in
  Gauge.set g 42.0;
  Alcotest.(check (float 1e-9)) "no-op while disabled" 0.0 (Gauge.value g);
  Control.with_enabled (fun () -> Gauge.set g 42.0);
  Alcotest.(check (float 1e-9)) "set while enabled" 42.0 (Gauge.value g)

(* --- Histogram --------------------------------------------------------- *)

let test_histogram_point_mass () =
  let h = Histogram.make "h" in
  Control.with_enabled (fun () ->
      for _ = 1 to 100 do
        Histogram.observe h 5.0
      done);
  Alcotest.(check int) "count" 100 (Histogram.count h);
  (* All mass in one bucket: every quantile clamps to the exact value. *)
  Alcotest.(check (float 1e-9)) "p50" 5.0 (Histogram.p50 h);
  Alcotest.(check (float 1e-9)) "p99" 5.0 (Histogram.p99 h);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Histogram.mean h)

let test_histogram_quantile_bounds () =
  let h = Histogram.make ~lo:1.0 "h" in
  Control.with_enabled (fun () ->
      for i = 1 to 1000 do
        Histogram.observe_int h i
      done);
  (* Log buckets cover [x, 2x): quantile estimates carry at most a
     factor-two relative error, clamped to the observed extrema. *)
  let p50 = Histogram.p50 h and p99 = Histogram.p99 h in
  Alcotest.(check bool) "p50 in [250,1000]" true (p50 >= 250.0 && p50 <= 1000.0);
  Alcotest.(check bool) "p99 in [495,1000]" true (p99 >= 495.0 && p99 <= 1000.0);
  Alcotest.(check bool) "monotone" true (p50 <= p99);
  Alcotest.(check (float 1e-9)) "max exact" 1000.0 (Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "min exact" 1.0 (Histogram.min_value h);
  Alcotest.(check (float 0.5)) "mean" 500.5 (Histogram.mean h)

let test_histogram_disabled_and_reset () =
  let h = Histogram.make "h" in
  Histogram.observe h 1.0;
  Alcotest.(check int) "no-op while disabled" 0 (Histogram.count h);
  Control.with_enabled (fun () -> Histogram.observe h 3.0);
  Histogram.reset h;
  Alcotest.(check int) "reset count" 0 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "reset quantile" 0.0 (Histogram.p50 h)

(* --- Hop trace --------------------------------------------------------- *)

let test_trace_per_packet () =
  let t = Hop_trace.create () in
  Control.with_enabled (fun () ->
      Hop_trace.record t ~uid:1 ~time:0.1 ~node:0 "rx";
      Hop_trace.record t ~uid:2 ~time:0.2 ~node:0 "rx";
      Hop_trace.record t ~uid:1 ~time:0.3 ~node:1 "tx";
      Hop_trace.record t ~uid:1 ~time:0.4 ~node:2 "deliver");
  let hops = Hop_trace.trace t ~uid:1 in
  Alcotest.(check (list string)) "chronological, one packet"
    ["rx"; "tx"; "deliver"]
    (List.map (fun (e : Hop_trace.event) -> e.Hop_trace.label) hops);
  Alcotest.(check int) "recorded" 4 (Hop_trace.recorded t)

let test_trace_ring_wraps () =
  let t = Hop_trace.create ~capacity:4 () in
  Control.with_enabled (fun () ->
      for i = 1 to 10 do
        Hop_trace.record t ~uid:i ~time:(float_of_int i) ~node:0 "rx"
      done);
  Alcotest.(check int) "recorded counts all" 10 (Hop_trace.recorded t);
  Alcotest.(check (list int)) "ring keeps the newest, oldest first"
    [7; 8; 9; 10]
    (List.map (fun (e : Hop_trace.event) -> e.Hop_trace.uid)
       (Hop_trace.recent t 100));
  Alcotest.(check (list int)) "evicted packet has no trace" []
    (List.map (fun (e : Hop_trace.event) -> e.Hop_trace.uid)
       (Hop_trace.trace t ~uid:3))

let test_trace_disabled () =
  let t = Hop_trace.create () in
  Hop_trace.record t ~uid:1 ~time:0.0 ~node:0 "rx";
  Alcotest.(check int) "no-op while disabled" 0 (Hop_trace.recorded t)

(* --- Registry ---------------------------------------------------------- *)

let test_registry_get_or_create () =
  let a = Registry.counter "x.count" in
  let b = Registry.counter "x.count" in
  Control.with_enabled (fun () -> Counter.incr a);
  Alcotest.(check int) "same handle" 1 (Counter.value b);
  Alcotest.(check int) "counter_value" 1 (Registry.counter_value "x.count");
  Alcotest.(check int) "absent name reads 0" 0
    (Registry.counter_value "nope");
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Registry: x.count already registered as a counter")
    (fun () -> ignore (Registry.gauge "x.count"))

let test_registry_reset_keeps_registrations () =
  let c = Registry.counter "y.count" in
  let h = Registry.histogram "y.hist" in
  Control.with_enabled (fun () ->
      Counter.incr c;
      Histogram.observe h 1.0;
      Hop_trace.record (Registry.trace ()) ~uid:9 ~time:1.0 ~node:0 "rx");
  Registry.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Counter.value c);
  Alcotest.(check int) "histogram zeroed" 0 (Histogram.count h);
  Alcotest.(check (list int)) "trace cleared" []
    (List.map (fun (e : Hop_trace.event) -> e.Hop_trace.uid)
       (Hop_trace.recent (Registry.trace ()) 10));
  Alcotest.(check bool) "registration survives" true
    (Registry.find_counter "y.count" <> None)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    i + n <= h && (String.sub haystack i n = needle || go (i + 1))
  in
  n = 0 || go 0

let test_registry_json () =
  let c = Registry.counter "z.count" in
  let h = Registry.histogram "z.hist" in
  Control.with_enabled (fun () ->
      Counter.add c 3;
      Histogram.observe h 2.0;
      Hop_trace.record (Registry.trace ()) ~uid:7 ~time:1.5 ~node:4 "tx");
  let json = Registry.to_json () in
  Alcotest.(check bool) "counter serialized" true
    (contains ~needle:"\"z.count\":3" json);
  Alcotest.(check bool) "histogram serialized" true
    (contains ~needle:"\"z.hist\":{\"count\":1" json);
  Alcotest.(check bool) "trace serialized" true
    (contains ~needle:"\"uid\":7" json);
  Alcotest.(check bool) "trace label serialized" true
    (contains ~needle:"\"event\":\"tx\"" json)

(* --- Histogram edge cases ---------------------------------------------- *)

let test_histogram_empty () =
  let h = Histogram.make "empty" in
  Alcotest.(check int) "count" 0 (Histogram.count h);
  Alcotest.(check (float 1e-12)) "mean" 0.0 (Histogram.mean h);
  Alcotest.(check (float 1e-12)) "min" 0.0 (Histogram.min_value h);
  Alcotest.(check (float 1e-12)) "max" 0.0 (Histogram.max_value h);
  List.iter
    (fun q ->
       Alcotest.(check (float 1e-12))
         (Printf.sprintf "q%.2f of empty" q)
         0.0 (Histogram.quantile h q))
    [0.0; 0.5; 0.99; 1.0];
  Alcotest.check_raises "fraction above 1"
    (Invalid_argument "Histogram.quantile: fraction outside [0, 1]")
    (fun () -> ignore (Histogram.quantile h 1.5))

let test_histogram_single_sample () =
  let h = Histogram.make "one" in
  Control.with_enabled (fun () -> Histogram.observe h 0.0042);
  (* Every quantile of a point mass is the point: interpolation inside
     the bucket must clamp to the observed extrema. *)
  List.iter
    (fun q ->
       Alcotest.(check (float 1e-12))
         (Printf.sprintf "q%.2f" q)
         0.0042 (Histogram.quantile h q))
    [0.0; 0.5; 0.9; 0.99; 1.0];
  Alcotest.(check (float 1e-12)) "min" 0.0042 (Histogram.min_value h);
  Alcotest.(check (float 1e-12)) "max" 0.0042 (Histogram.max_value h)

let test_histogram_one_bucket () =
  (* A single-bucket histogram degenerates gracefully: everything lands
     in bucket 0 and quantiles stay within [min, max]. *)
  let h = Histogram.make ~buckets:1 "tiny" in
  Control.with_enabled (fun () ->
      List.iter (Histogram.observe h) [0.001; 5.0; 123.0]);
  Alcotest.(check int) "count" 3 (Histogram.count h);
  let p50 = Histogram.p50 h and p99 = Histogram.p99 h in
  Alcotest.(check bool)
    (Printf.sprintf "p50 %.6g within extrema" p50)
    true (p50 >= 0.001 && p50 <= 123.0);
  Alcotest.(check bool)
    (Printf.sprintf "p99 %.6g within extrema" p99)
    true (p99 >= 0.001 && p99 <= 123.0)

let test_histogram_quantile_clamped () =
  (* Two far-apart samples: bucket interpolation could stray outside
     the observed range; quantiles must clamp to [vmin, vmax]. *)
  let h = Histogram.make "clamp" in
  Control.with_enabled (fun () ->
      Histogram.observe h 1.0;
      Histogram.observe h 1.0000001);
  List.iter
    (fun q ->
       let v = Histogram.quantile h q in
       Alcotest.(check bool)
         (Printf.sprintf "q%.2f = %.9g clamped" q v)
         true (v >= 1.0 && v <= 1.0000001))
    [0.0; 0.01; 0.5; 0.99; 1.0];
  (* Below-range values clamp into bucket 0 without breaking extrema. *)
  let low = Histogram.make ~lo:1e-3 "low" in
  Control.with_enabled (fun () -> Histogram.observe low 1e-9);
  Alcotest.(check (float 1e-15)) "sub-lo sample reported exactly" 1e-9
    (Histogram.p50 low)

let test_histogram_observe_int_gated () =
  let h = Histogram.make "gated" in
  Histogram.observe_int h 7;
  Alcotest.(check int) "no-op while disabled" 0 (Histogram.count h);
  Control.with_enabled (fun () -> Histogram.observe_int h 7);
  Alcotest.(check int) "counts while enabled" 1 (Histogram.count h);
  Alcotest.(check (float 1e-12)) "value" 7.0 (Histogram.max_value h)

let test_histogram_snapshot_restore () =
  let h = Histogram.make "snap" in
  Control.with_enabled (fun () ->
      Histogram.observe h 1.0;
      Histogram.observe h 4.0);
  let s = Histogram.snapshot h in
  Control.with_enabled (fun () ->
      for _ = 1 to 50 do Histogram.observe h 100.0 done);
  Histogram.restore h s;
  Alcotest.(check int) "count back" 2 (Histogram.count h);
  Alcotest.(check (float 1e-12)) "sum back" 5.0 (Histogram.sum h);
  Alcotest.(check (float 1e-12)) "max back" 4.0 (Histogram.max_value h)

(* --- Event log --------------------------------------------------------- *)

let test_event_log_gated_and_wraps () =
  let l = Event_log.create ~capacity:4 () in
  Event_log.record l ~time:0.0 (Event_log.Note "ignored");
  Alcotest.(check int) "no-op while disabled" 0 (Event_log.recorded l);
  Control.with_enabled (fun () ->
      for i = 1 to 6 do
        Event_log.record l ~time:(float_of_int i)
          (Event_log.Note (Printf.sprintf "n%d" i))
      done);
  Alcotest.(check int) "all recorded" 6 (Event_log.recorded l);
  let entries = Event_log.entries l in
  Alcotest.(check int) "ring keeps capacity" 4 (List.length entries);
  Alcotest.(check (list int)) "oldest evicted, seq monotonic"
    [2; 3; 4; 5]
    (List.map (fun (e : Event_log.entry) -> e.Event_log.seq) entries);
  Alcotest.(check int) "recent 2" 2 (List.length (Event_log.recent l 2));
  Event_log.clear l;
  Alcotest.(check int) "cleared" 0 (List.length (Event_log.entries l))

let test_event_log_kinds_and_clock () =
  let l = Event_log.create () in
  Event_log.set_clock l (fun () -> 42.0);
  Control.with_enabled (fun () ->
      Event_log.record l
        (Event_log.Slo_violation
           { vpn = 1; band = 0; dimension = "loss"; value = 0.5; bound = 0.01 });
      Event_log.record l (Event_log.Link_down { src = 0; dst = 1 });
      Event_log.record l (Event_log.Link_up { src = 0; dst = 1 });
      Event_log.record l (Event_log.Recompile { node = 3 }));
  Alcotest.(check int) "one violation" 1
    (Event_log.count_kind l "slo_violation");
  Alcotest.(check int) "no recoveries" 0
    (Event_log.count_kind l "slo_recovered");
  (match Event_log.entries l with
   | e :: _ ->
     Alcotest.(check (float 1e-9)) "clock supplied time" 42.0
       e.Event_log.time;
     Alcotest.(check string) "kind tag" "slo_violation"
       (Event_log.kind e.Event_log.event)
   | [] -> Alcotest.fail "entries expected");
  let json = Event_log.json_entries l in
  Alcotest.(check bool) "json has kinds" true
    (contains ~needle:"\"kind\":\"link_down\"" json
     && contains ~needle:"\"kind\":\"recompile\"" json)

(* --- Span -------------------------------------------------------------- *)

let hop ~uid ~time ~node label = { Hop_trace.uid; time; node; label }

let test_span_of_trace_delivered () =
  let events =
    [ hop ~uid:7 ~time:0.000 ~node:0 "rx";
      hop ~uid:7 ~time:0.001 ~node:0 "tx";
      hop ~uid:7 ~time:0.003 ~node:0 "txstart";
      hop ~uid:7 ~time:0.007 ~node:1 "rx";
      hop ~uid:7 ~time:0.008 ~node:1 "deliver" ]
  in
  match Span.of_trace ~vpn:1 ~band:0 events with
  | None -> Alcotest.fail "span expected"
  | Some s ->
    Alcotest.(check int) "uid" 7 s.Span.uid;
    Alcotest.(check string) "outcome" "delivered"
      (Span.outcome_name s.Span.outcome);
    Alcotest.(check int) "four segments" 4 (List.length s.Span.segments);
    Alcotest.(check (list string)) "stage sequence"
      ["processing"; "queueing"; "transmission"; "delivery"]
      (List.map (fun (g : Span.segment) -> Span.kind_name g.Span.kind)
         s.Span.segments);
    Alcotest.(check (float 1e-12)) "processing dwell" 0.001
      (Span.dwell_of_kind s Span.Processing);
    Alcotest.(check (float 1e-12)) "queueing dwell" 0.002
      (Span.dwell_of_kind s Span.Queueing);
    Alcotest.(check (float 1e-12)) "transmission dwell" 0.004
      (Span.dwell_of_kind s Span.Transmission);
    (* Contiguous segments: dwells account for every microsecond. *)
    let dwell_sum =
      List.fold_left (fun a (g : Span.segment) -> a +. g.Span.dwell) 0.0
        s.Span.segments
    in
    Alcotest.(check (float 1e-12)) "dwells sum to end-to-end" (Span.total s)
      dwell_sum;
    Alcotest.(check (float 1e-12)) "total" 0.008 (Span.total s)

let test_span_of_trace_dropped () =
  let events =
    [ hop ~uid:9 ~time:0.0 ~node:0 "rx";
      hop ~uid:9 ~time:0.001 ~node:0 "tx";
      hop ~uid:9 ~time:0.001 ~node:0 "drop:queue-tail" ]
  in
  (match Span.of_trace events with
   | None -> Alcotest.fail "span expected"
   | Some s ->
     (match s.Span.outcome with
      | Span.Dropped reason ->
        Alcotest.(check string) "reason" "queue-tail" reason
      | _ -> Alcotest.fail "dropped outcome expected"));
  Alcotest.(check bool) "empty trace yields none" true
    (Span.of_trace [] = None)

let test_span_sampler () =
  let trace = Registry.trace () in
  let s = Span.sampler ~every:2 ~keep:8 () in
  let feed ~uid ~dropped =
    Control.with_enabled (fun () ->
        Hop_trace.record trace ~uid ~time:0.0 ~node:0 "rx";
        Hop_trace.record trace ~uid ~time:0.001 ~node:0
          (if dropped then "drop:no-route" else "deliver");
        Span.offer s trace ~uid ~vpn:1 ~band:0 ~dropped)
  in
  (* Disabled: offers are invisible. *)
  Span.offer s trace ~uid:99 ~vpn:1 ~band:0 ~dropped:false;
  Alcotest.(check int) "no-op while disabled" 0 (Span.offered s);
  feed ~uid:1 ~dropped:false;
  feed ~uid:2 ~dropped:false;
  feed ~uid:3 ~dropped:false;
  (* every=2: uids 1 and 3 kept (first of a key always), 2 skipped. *)
  Alcotest.(check (list int)) "1-in-2 deliveries kept" [1; 3]
    (List.map (fun (sp : Span.t) -> sp.Span.uid) (Span.delivered_spans s));
  feed ~uid:4 ~dropped:true;
  Alcotest.(check (list int)) "drops always kept" [4]
    (List.map (fun (sp : Span.t) -> sp.Span.uid) (Span.dropped_spans s));
  Alcotest.(check int) "offered" 4 (Span.offered s);
  Alcotest.(check int) "kept" 3 (Span.kept s);
  Alcotest.(check bool) "json is an array" true
    (String.length (Span.sampler_to_json s) > 2
     && (Span.sampler_to_json s).[0] = '[');
  Span.clear s;
  Alcotest.(check int) "cleared" 0 (Span.kept s)

(* --- SLO --------------------------------------------------------------- *)

let test_slo_spec_validation () =
  Alcotest.check_raises "target must be a fraction"
    (Invalid_argument "Slo.spec: target must be in (0, 1)")
    (fun () -> ignore (Slo.spec 1.0))

let test_slo_good_traffic_stays_in_budget () =
  let events = Event_log.create () in
  let t = Slo.create ~events () in
  Slo.declare t ~vpn:1 ~band:0
    (Slo.spec ~latency_p99:0.1 ~loss_ratio:0.01 ~availability:0.9 0.99);
  Control.with_enabled (fun () ->
      for i = 0 to 99 do
        Slo.observe_delivery t ~vpn:1 ~band:0
          ~time:(0.1 *. float_of_int i) ~latency:0.002
      done;
      Slo.advance t ~time:20.0);
  Alcotest.(check bool) "in budget" true (Slo.in_budget t);
  Alcotest.(check int) "no violations" 0
    (Event_log.count_kind events "slo_violation");
  (match Slo.reports t with
   | [r] ->
     Alcotest.(check int) "total" 100 r.Slo.total;
     Alcotest.(check int) "bad" 0 r.Slo.bad;
     Alcotest.(check (float 1e-9)) "budget untouched" 1.0
       r.Slo.budget_remaining;
     Alcotest.(check bool) "available" true (r.Slo.availability >= 0.9)
   | rs -> Alcotest.fail (Printf.sprintf "one report, got %d" (List.length rs)))

let test_slo_violation_recovery_and_alert () =
  let events = Event_log.create () in
  let t = Slo.create ~events () in
  Slo.declare t ~vpn:1 ~band:0
    (Slo.spec ~latency_p99:0.1 ~loss_ratio:0.01 ~availability:0.9 0.99);
  Control.with_enabled (fun () ->
      (* 10 s of healthy traffic... *)
      for i = 0 to 99 do
        Slo.observe_delivery t ~vpn:1 ~band:0
          ~time:(0.1 *. float_of_int i) ~latency:0.002
      done;
      (* ...then a 5 s blackout: every packet dropped. *)
      for i = 0 to 49 do
        Slo.observe_drop t ~vpn:1 ~band:0
          ~time:(10.0 +. (0.1 *. float_of_int i))
      done;
      Slo.advance t ~time:16.0);
  Alcotest.(check bool) "loss violation fired" true
    (Event_log.count_kind events "slo_violation" >= 1);
  Alcotest.(check bool) "burn-rate alert fired" true
    (Event_log.count_kind events "alert_fire" >= 1);
  Alcotest.(check bool) "out of budget" false (Slo.in_budget t);
  (match Slo.reports t with
   | [r] ->
     Alcotest.(check bool) "burn fast over threshold" true
       (r.Slo.burn_fast >= 2.0);
     Alcotest.(check bool) "violations listed" true
       (List.mem "loss" r.Slo.violations)
   | _ -> Alcotest.fail "one report expected");
  (* Repair: healthy traffic long enough for the blackout to age out
     of the 60 s slow window; violations clear, the alert clears. *)
  Control.with_enabled (fun () ->
      for i = 0 to 659 do
        Slo.observe_delivery t ~vpn:1 ~band:0
          ~time:(16.0 +. (0.1 *. float_of_int i)) ~latency:0.002
      done;
      Slo.advance t ~time:85.0);
  Alcotest.(check bool) "recovery fired" true
    (Event_log.count_kind events "slo_recovered" >= 1);
  Alcotest.(check bool) "alert cleared" true
    (Event_log.count_kind events "alert_clear" >= 1);
  (match Slo.reports t with
   | [r] -> Alcotest.(check bool) "no live violations" true
              (r.Slo.violations = [] && not r.Slo.alerting)
   | _ -> Alcotest.fail "one report expected")

let test_slo_gated_and_json () =
  let events = Event_log.create () in
  let t = Slo.create ~events () in
  Slo.declare t ~vpn:2 ~band:1 (Slo.spec ~loss_ratio:0.1 0.9);
  (* Disabled: observations vanish. *)
  Slo.observe_delivery t ~vpn:2 ~band:1 ~time:0.5 ~latency:0.001;
  Slo.observe_drop t ~vpn:2 ~band:1 ~time:0.6;
  (match Slo.reports t with
   | [r] -> Alcotest.(check int) "no-op while disabled" 0 r.Slo.total
   | _ -> Alcotest.fail "one report expected");
  Control.with_enabled (fun () ->
      Slo.observe_delivery t ~vpn:2 ~band:1 ~time:0.5 ~latency:0.001;
      Slo.advance t ~time:5.0);
  let json = Slo.to_json t in
  Alcotest.(check bool) "json carries the key" true
    (contains ~needle:"\"vpn\":2" json && contains ~needle:"\"band\":1" json);
  Control.with_enabled (fun () -> Slo.publish_gauges ~prefix:"t.slo" t);
  Alcotest.(check bool) "gauge mirrors in_budget" true
    (match Registry.find_gauge "t.slo.vpn2.band1.in_budget" with
     | Some g -> Gauge.value g = 1.0
     | None -> false)

(* --- Registry snapshot/restore ----------------------------------------- *)

let test_registry_snapshot_restore () =
  let c = Registry.counter "s.count" in
  let g = Registry.gauge "s.gauge" in
  let h = Registry.histogram "s.hist" in
  Control.with_enabled (fun () ->
      Counter.add c 5;
      Gauge.set g 2.5;
      Histogram.observe h 1.0);
  let snap = Registry.snapshot () in
  Registry.reset ();
  Control.with_enabled (fun () ->
      Counter.add c 100;
      Gauge.set g 9.9;
      Histogram.observe h 50.0;
      Gauge.set (Registry.gauge "s.fresh") 7.0);
  Registry.restore snap;
  Alcotest.(check int) "counter restored" 5 (Counter.value c);
  Alcotest.(check (float 1e-9)) "gauge restored" 2.5 (Gauge.value g);
  Alcotest.(check int) "histogram count restored" 1 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "histogram sum restored" 1.0
    (Histogram.sum h);
  (* Metrics born after the snapshot keep their section values. *)
  Alcotest.(check (float 1e-9)) "post-snapshot metric kept" 7.0
    (Gauge.value (Registry.gauge "s.fresh"))

(* Two domains bumping one counter handle concurrently must not lose a
   single increment: each domain's bumps land in its own domain-local
   cell, and the partials combine through snapshot (taken inside the
   owning domain) + absorb. A plain shared [mutable int] would lose
   increments to read-modify-write races here. *)
let test_counter_two_domains () =
  let c = Registry.counter "par.shared" in
  let bumps = 100_000 in
  Control.enable ();
  let worker () =
    (* Fresh domain: its cell starts at 0 regardless of main's. *)
    for _ = 1 to bumps do
      Counter.incr c
    done;
    Registry.snapshot ()
  in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  for _ = 1 to bumps do
    Counter.incr c
  done;
  let s1 = Domain.join d1 and s2 = Domain.join d2 in
  Alcotest.(check int) "domain partial" bumps
    (Registry.snapshot_counter s1 "par.shared");
  Registry.absorb s1;
  Registry.absorb s2;
  Alcotest.(check int) "no lost increments" (3 * bumps) (Counter.value c)

(* --- Timeseries --------------------------------------------------------- *)

let test_series_gated () =
  let s = Timeseries.make ~capacity:8 "ts.gated" in
  Timeseries.add s ~time:0.0 1.0;
  Alcotest.(check int) "no-op while disabled" 0 (Timeseries.length s);
  Control.with_enabled (fun () -> Timeseries.add s ~time:1.0 2.0);
  Alcotest.(check int) "records while enabled" 1 (Timeseries.length s);
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "the sample" (1.0, 2.0)
    (Timeseries.get s 0)

let test_series_decimation () =
  (* 100 arrivals through a ring of 8: the ring decimates by powers of
     two, and what survives is exactly the arrivals at multiples of the
     final stride — a pure function of the arrival sequence, never a
     function of when the overflows happened. *)
  let cap = 8 in
  let s = Timeseries.make ~capacity:cap "ts.decim" in
  Control.with_enabled (fun () ->
      for i = 0 to 99 do
        Timeseries.add s ~time:(float_of_int i)
          (float_of_int (i * i))
      done);
  Alcotest.(check bool) "bounded by capacity" true
    (Timeseries.length s <= cap && Timeseries.length s > 0);
  let stride = 1 lsl Timeseries.level s in
  Alcotest.(check bool) "decimated at least once" true (stride > 1);
  let prev = ref neg_infinity in
  Timeseries.iter s (fun t v ->
      let i = int_of_float t in
      Alcotest.(check int) "kept arrival is a stride multiple" 0
        (i mod stride);
      Alcotest.(check (float 1e-9)) "value untouched by decimation"
        (float_of_int (i * i)) v;
      Alcotest.(check bool) "times strictly increasing" true (t > !prev);
      prev := t);
  Alcotest.(check (float 1e-9)) "origin survives" 0.0
    (fst (Timeseries.get s 0))

let test_series_snapshot_restore () =
  let s = Timeseries.make ~capacity:8 "ts.snap" in
  Control.with_enabled (fun () ->
      for i = 0 to 4 do
        Timeseries.add s ~time:(float_of_int i) 1.0
      done);
  let saved = Timeseries.snapshot s in
  Control.with_enabled (fun () -> Timeseries.add s ~time:9.0 9.0);
  Alcotest.(check int) "grew past the snapshot" 6 (Timeseries.length s);
  Timeseries.restore s saved;
  Alcotest.(check int) "restored" 5 (Timeseries.length s);
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "restored tail"
    (4.0, 1.0)
    (Timeseries.get s (Timeseries.length s - 1))

(* Satellite of the shard-merge contract: two domains record
   interleaved schedules into the same series handle (each lands in its
   own domain-local ring); absorbing the snapshots in either order
   yields the identical merged series, with values summed at equal
   sample times. *)
let test_series_absorb_two_domains () =
  let s = Registry.series ~capacity:64 "ts.par" in
  Control.enable ();
  (* offset 0 samples even seconds, offset 1 odd seconds; both sample
     the shared times 100..104 with different values. *)
  let worker offset () =
    for i = 0 to 9 do
      Timeseries.add s ~time:(float_of_int ((2 * i) + offset)) 1.0
    done;
    for i = 0 to 4 do
      Timeseries.add s ~time:(float_of_int (100 + i))
        (float_of_int (offset + 1))
    done;
    Registry.snapshot ()
  in
  let d1 = Domain.spawn (worker 0) and d2 = Domain.spawn (worker 1) in
  let s1 = Domain.join d1 and s2 = Domain.join d2 in
  Registry.absorb s1;
  Registry.absorb s2;
  let ab = Timeseries.samples s in
  Timeseries.reset s;
  Registry.absorb s2;
  Registry.absorb s1;
  let ba = Timeseries.samples s in
  Alcotest.(check bool) "absorb order is irrelevant" true (ab = ba);
  Alcotest.(check int) "union of distinct times plus shared times" 25
    (Array.length ab);
  let at time =
    match Array.find_opt (fun (t, _) -> t = time) ab with
    | Some (_, v) -> v
    | None -> Alcotest.failf "no sample at %g" time
  in
  Alcotest.(check (float 1e-9)) "disjoint time kept as-is" 1.0 (at 7.0);
  Alcotest.(check (float 1e-9)) "equal times merge by sum" 3.0 (at 102.0)

let () =
  let tc name f = Alcotest.test_case name `Quick (wrap f) in
  Alcotest.run "telemetry"
    [ ("control",
       [ tc "scoping" test_control_scoping;
         tc "restores on exception" test_control_restores_on_exception ]);
      ("counter",
       [ tc "gated by control" test_counter_gated;
         tc "two domains" test_counter_two_domains ]);
      ("gauge", [ tc "gated by control" test_gauge_gated ]);
      ("histogram",
       [ tc "point mass" test_histogram_point_mass;
         tc "quantile bounds" test_histogram_quantile_bounds;
         tc "disabled and reset" test_histogram_disabled_and_reset;
         tc "empty" test_histogram_empty;
         tc "single sample" test_histogram_single_sample;
         tc "one bucket" test_histogram_one_bucket;
         tc "quantile clamped" test_histogram_quantile_clamped;
         tc "observe_int gated" test_histogram_observe_int_gated;
         tc "snapshot restore" test_histogram_snapshot_restore ]);
      ("hop-trace",
       [ tc "per packet" test_trace_per_packet;
         tc "ring wraps" test_trace_ring_wraps;
         tc "disabled" test_trace_disabled ]);
      ("registry",
       [ tc "get or create" test_registry_get_or_create;
         tc "reset keeps registrations" test_registry_reset_keeps_registrations;
         tc "json export" test_registry_json;
         tc "snapshot restore" test_registry_snapshot_restore ]);
      ("timeseries",
       [ tc "gated by control" test_series_gated;
         tc "decimation invariant" test_series_decimation;
         tc "snapshot restore" test_series_snapshot_restore;
         tc "two-domain absorb orders" test_series_absorb_two_domains ]);
      ("event-log",
       [ tc "gated and wraps" test_event_log_gated_and_wraps;
         tc "kinds and clock" test_event_log_kinds_and_clock ]);
      ("span",
       [ tc "of_trace delivered" test_span_of_trace_delivered;
         tc "of_trace dropped" test_span_of_trace_dropped;
         tc "sampler" test_span_sampler ]);
      ("slo",
       [ tc "spec validation" test_slo_spec_validation;
         tc "good traffic in budget" test_slo_good_traffic_stays_in_budget;
         tc "violation recovery alert" test_slo_violation_recovery_and_alert;
         tc "gated and json" test_slo_gated_and_json ]) ]
