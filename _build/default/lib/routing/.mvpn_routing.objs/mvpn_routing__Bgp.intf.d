lib/routing/bgp.mli: Mvpn_net
