(** Multifield packet classification.

    An ordered rule list; the first matching rule's action wins. Rules
    match on the fields a router can actually see: the classifiable
    5-tuple (absent once ESP has encrypted the inner header — the C4
    failure mode) and the visible DSCP. A rule with no predicates
    matches everything, so a trailing default is just an empty rule. *)

type 'a rule

val rule :
  ?src:Mvpn_net.Prefix.t ->
  ?dst:Mvpn_net.Prefix.t ->
  ?proto:Mvpn_net.Flow.proto ->
  ?src_port:int * int ->
  ?dst_port:int * int ->
  ?dscp:Mvpn_net.Dscp.t ->
  'a -> 'a rule
(** Port ranges are inclusive. *)

type 'a t

val create : 'a rule list -> 'a t
(** Rules in priority order. *)

val classify : 'a t -> Mvpn_net.Packet.t -> 'a option
(** First matching rule's action. Rules with 5-tuple predicates cannot
    match a packet whose classifiable flow is hidden by encryption;
    DSCP-only rules still can (they read the visible header). *)

val classify_flow :
  'a t -> ?dscp:Mvpn_net.Dscp.t -> Mvpn_net.Flow.t -> 'a option
(** Classify a bare flow (CPE-side, before any encapsulation). [dscp]
    defaults to best effort. *)

val length : 'a t -> int
