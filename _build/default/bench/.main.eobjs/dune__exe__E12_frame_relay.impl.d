bench/e12_frame_relay.ml: Array Backbone Frame Frswitch Hashtbl L2vpn Mvpn_atm Mvpn_core Mvpn_frelay Mvpn_net Mvpn_qos Mvpn_sim Network Pvc Qos_mapping Tables
