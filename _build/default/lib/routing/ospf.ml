module Topology = Mvpn_sim.Topology
module Prefix = Mvpn_net.Prefix
module Fib = Mvpn_net.Fib

type lsa = {
  originator : int;
  seq : int;
  adjacencies : (int * int) list;  (* neighbor, cost; up links only *)
  prefixes : Prefix.t list;
}

type router = {
  id : int;
  lsdb : (int, lsa) Hashtbl.t;
  mutable fib : Fib.t;
  mutable attached : Prefix.t list;
  mutable own_seq : int;
}

type t = {
  topo : Topology.t;
  routers : router array;
  members : int -> bool;
  mutable messages : int;
}

let create ?(members = fun _ -> true) topo =
  let n = Topology.node_count topo in
  { topo;
    routers =
      Array.init n (fun id ->
          { id; lsdb = Hashtbl.create 16; fib = Fib.create ();
            attached = []; own_seq = 0 });
    members;
    messages = 0 }

let router_count t = Array.length t.routers

let check_router t v =
  if v < 0 || v >= Array.length t.routers then
    invalid_arg (Printf.sprintf "Ospf: unknown router %d" v)

let attach_prefix t node prefix =
  check_router t node;
  let r = t.routers.(node) in
  if not (List.exists (Prefix.equal prefix) r.attached) then
    r.attached <- prefix :: r.attached

let current_lsa t r =
  let adjacencies =
    List.sort compare
      (List.filter_map
         (fun (nbr, l) ->
            if t.members nbr then Some (nbr, l.Topology.cost) else None)
         (Topology.up_neighbors t.topo r.id))
  in
  { originator = r.id; seq = r.own_seq; adjacencies;
    prefixes = List.sort Prefix.compare r.attached }

let lsa_content_equal a b =
  a.originator = b.originator
  && a.adjacencies = b.adjacencies
  && List.equal Prefix.equal a.prefixes b.prefixes

(* Re-originate: bump the sequence number only when content changed, so
   steady-state converge calls cost zero flooding rounds. *)
let originate t r =
  let fresh = current_lsa t r in
  match Hashtbl.find_opt r.lsdb r.id with
  | Some old when lsa_content_equal old fresh -> ()
  | Some _ | None ->
    r.own_seq <- r.own_seq + 1;
    Hashtbl.replace r.lsdb r.id { fresh with seq = r.own_seq }

(* One synchronous flooding round: every router offers its database to
   each up neighbor; the neighbor accepts LSAs that are new or newer.
   Changes are staged so the round is order-independent. *)
let flood_round t =
  let staged = ref [] in
  Array.iter
    (fun r ->
       if not (t.members r.id) then ()
       else
       List.iter
         (fun (nbr, _) ->
            if not (t.members nbr) then ()
            else
            let peer = t.routers.(nbr) in
            Hashtbl.iter
              (fun origin lsa ->
                 let newer =
                   match Hashtbl.find_opt peer.lsdb origin with
                   | None -> true
                   | Some have -> lsa.seq > have.seq
                 in
                 if newer then staged := (peer, origin, lsa) :: !staged)
              r.lsdb)
         (Topology.up_neighbors t.topo r.id))
    t.routers;
  (* Several neighbors may offer the same LSA in one round; count each
     transmission (that is the wire traffic) but apply once. *)
  t.messages <- t.messages + List.length !staged;
  let changed = ref false in
  List.iter
    (fun (peer, origin, lsa) ->
       match Hashtbl.find_opt peer.lsdb origin with
       | Some have when have.seq >= lsa.seq -> ()
       | Some _ | None ->
         Hashtbl.replace peer.lsdb origin lsa;
         changed := true)
    !staged;
  !changed

let spf_and_fib t r =
  (* Dijkstra over the router's own database, not the live topology:
     a router can only route on what flooding has told it. *)
  let n = Array.length t.routers in
  let dist = Array.make n infinity in
  let first_hop = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Mvpn_sim.Heap.create () in
  dist.(r.id) <- 0.0;
  Mvpn_sim.Heap.push heap 0.0 r.id;
  let rec drain () =
    match Mvpn_sim.Heap.pop heap with
    | None -> ()
    | Some (d, v) ->
      if not settled.(v) && d <= dist.(v) then begin
        settled.(v) <- true;
        (match Hashtbl.find_opt r.lsdb v with
         | None -> ()
         | Some lsa ->
           List.iter
             (fun (nbr, cost) ->
                (* Accept the adjacency only if the neighbor's LSA
                   agrees (two-way check), as real link-state SPF does. *)
                let two_way =
                  match Hashtbl.find_opt r.lsdb nbr with
                  | None -> false
                  | Some back ->
                    List.exists (fun (b, _) -> b = v) back.adjacencies
                in
                if two_way && nbr < n && not settled.(nbr) then begin
                  let nd = dist.(v) +. float_of_int cost in
                  if nd < dist.(nbr)
                  || (nd = dist.(nbr) && parent.(nbr) > v)
                  then begin
                    dist.(nbr) <- nd;
                    parent.(nbr) <- v;
                    first_hop.(nbr) <-
                      (if v = r.id then nbr else first_hop.(v));
                    Mvpn_sim.Heap.push heap nd nbr
                  end
                end)
             lsa.adjacencies)
      end;
      drain ()
  in
  drain ();
  let fib = Fib.create () in
  Hashtbl.iter
    (fun origin lsa ->
       List.iter
         (fun p ->
            if origin = r.id then
              Fib.add fib p
                { Fib.next_hop = Fib.local_delivery; cost = 0;
                  source = Fib.Connected }
            else if Float.is_finite dist.(origin) then
              Fib.add fib p
                { Fib.next_hop = first_hop.(origin);
                  cost = int_of_float dist.(origin); source = Fib.Igp })
         lsa.prefixes)
    r.lsdb;
  r.fib <- fib;
  (dist, first_hop)

let converge t =
  Array.iter (fun r -> if t.members r.id then originate t r) t.routers;
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    if flood_round t then incr rounds else continue_ := false
  done;
  Array.iter (fun r -> if t.members r.id then ignore (spf_and_fib t r))
    t.routers;
  !rounds

let converged t =
  let member_routers =
    Array.to_list t.routers
    |> List.filter (fun r -> t.members r.id)
  in
  match member_routers with
  | [] -> true
  | reference :: rest ->
    List.for_all
      (fun r ->
         Hashtbl.length r.lsdb = Hashtbl.length reference.lsdb
         && Hashtbl.fold
              (fun k lsa acc ->
                 acc
                 && match Hashtbl.find_opt reference.lsdb k with
                 | Some ref_lsa -> ref_lsa.seq = lsa.seq
                 | None -> false)
              r.lsdb true)
      rest

let messages_sent t = t.messages

let fib t node =
  check_router t node;
  t.routers.(node).fib

let spf_arrays t src =
  check_router t src;
  spf_and_fib t t.routers.(src)

let next_hop_to_router t ~src ~dst =
  check_router t dst;
  let _, first_hop = spf_arrays t src in
  if dst = src then None
  else if first_hop.(dst) >= 0 then Some first_hop.(dst)
  else None

let distance t ~src ~dst =
  check_router t dst;
  let dist, _ = spf_arrays t src in
  dist.(dst)
