open Mvpn_telemetry

(* Every test runs against the process-global registry and control
   flag, so each starts from a clean slate and leaves telemetry off. *)
let wrap f () =
  Registry.reset ();
  Control.disable ();
  Fun.protect ~finally:(fun () ->
      Registry.reset ();
      Control.disable ())
    f

(* --- Control ----------------------------------------------------------- *)

let test_control_scoping () =
  Alcotest.(check bool) "starts off" false (Control.is_enabled ());
  Control.with_enabled (fun () ->
      Alcotest.(check bool) "on inside" true (Control.is_enabled ());
      Control.with_disabled (fun () ->
          Alcotest.(check bool) "nested off" false (Control.is_enabled ()));
      Alcotest.(check bool) "restored on" true (Control.is_enabled ()));
  Alcotest.(check bool) "restored off" false (Control.is_enabled ())

let test_control_restores_on_exception () =
  (try Control.with_enabled (fun () -> failwith "boom") with
   | Failure _ -> ());
  Alcotest.(check bool) "off after raise" false (Control.is_enabled ())

(* --- Counter ----------------------------------------------------------- *)

let test_counter_gated () =
  let c = Counter.make "c" in
  Counter.incr c;
  Counter.add c 10;
  Alcotest.(check int) "no-op while disabled" 0 (Counter.value c);
  Control.with_enabled (fun () ->
      Counter.incr c;
      Counter.incr c;
      Counter.add c 5);
  Alcotest.(check int) "counts while enabled" 7 (Counter.value c);
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.value c)

(* --- Gauge ------------------------------------------------------------- *)

let test_gauge_gated () =
  let g = Gauge.make "g" in
  Gauge.set g 42.0;
  Alcotest.(check (float 1e-9)) "no-op while disabled" 0.0 (Gauge.value g);
  Control.with_enabled (fun () -> Gauge.set g 42.0);
  Alcotest.(check (float 1e-9)) "set while enabled" 42.0 (Gauge.value g)

(* --- Histogram --------------------------------------------------------- *)

let test_histogram_point_mass () =
  let h = Histogram.make "h" in
  Control.with_enabled (fun () ->
      for _ = 1 to 100 do
        Histogram.observe h 5.0
      done);
  Alcotest.(check int) "count" 100 (Histogram.count h);
  (* All mass in one bucket: every quantile clamps to the exact value. *)
  Alcotest.(check (float 1e-9)) "p50" 5.0 (Histogram.p50 h);
  Alcotest.(check (float 1e-9)) "p99" 5.0 (Histogram.p99 h);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Histogram.mean h)

let test_histogram_quantile_bounds () =
  let h = Histogram.make ~lo:1.0 "h" in
  Control.with_enabled (fun () ->
      for i = 1 to 1000 do
        Histogram.observe_int h i
      done);
  (* Log buckets cover [x, 2x): quantile estimates carry at most a
     factor-two relative error, clamped to the observed extrema. *)
  let p50 = Histogram.p50 h and p99 = Histogram.p99 h in
  Alcotest.(check bool) "p50 in [250,1000]" true (p50 >= 250.0 && p50 <= 1000.0);
  Alcotest.(check bool) "p99 in [495,1000]" true (p99 >= 495.0 && p99 <= 1000.0);
  Alcotest.(check bool) "monotone" true (p50 <= p99);
  Alcotest.(check (float 1e-9)) "max exact" 1000.0 (Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "min exact" 1.0 (Histogram.min_value h);
  Alcotest.(check (float 0.5)) "mean" 500.5 (Histogram.mean h)

let test_histogram_disabled_and_reset () =
  let h = Histogram.make "h" in
  Histogram.observe h 1.0;
  Alcotest.(check int) "no-op while disabled" 0 (Histogram.count h);
  Control.with_enabled (fun () -> Histogram.observe h 3.0);
  Histogram.reset h;
  Alcotest.(check int) "reset count" 0 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "reset quantile" 0.0 (Histogram.p50 h)

(* --- Hop trace --------------------------------------------------------- *)

let test_trace_per_packet () =
  let t = Hop_trace.create () in
  Control.with_enabled (fun () ->
      Hop_trace.record t ~uid:1 ~time:0.1 ~node:0 "rx";
      Hop_trace.record t ~uid:2 ~time:0.2 ~node:0 "rx";
      Hop_trace.record t ~uid:1 ~time:0.3 ~node:1 "tx";
      Hop_trace.record t ~uid:1 ~time:0.4 ~node:2 "deliver");
  let hops = Hop_trace.trace t ~uid:1 in
  Alcotest.(check (list string)) "chronological, one packet"
    ["rx"; "tx"; "deliver"]
    (List.map (fun (e : Hop_trace.event) -> e.Hop_trace.label) hops);
  Alcotest.(check int) "recorded" 4 (Hop_trace.recorded t)

let test_trace_ring_wraps () =
  let t = Hop_trace.create ~capacity:4 () in
  Control.with_enabled (fun () ->
      for i = 1 to 10 do
        Hop_trace.record t ~uid:i ~time:(float_of_int i) ~node:0 "rx"
      done);
  Alcotest.(check int) "recorded counts all" 10 (Hop_trace.recorded t);
  Alcotest.(check (list int)) "ring keeps the newest, oldest first"
    [7; 8; 9; 10]
    (List.map (fun (e : Hop_trace.event) -> e.Hop_trace.uid)
       (Hop_trace.recent t 100));
  Alcotest.(check (list int)) "evicted packet has no trace" []
    (List.map (fun (e : Hop_trace.event) -> e.Hop_trace.uid)
       (Hop_trace.trace t ~uid:3))

let test_trace_disabled () =
  let t = Hop_trace.create () in
  Hop_trace.record t ~uid:1 ~time:0.0 ~node:0 "rx";
  Alcotest.(check int) "no-op while disabled" 0 (Hop_trace.recorded t)

(* --- Registry ---------------------------------------------------------- *)

let test_registry_get_or_create () =
  let a = Registry.counter "x.count" in
  let b = Registry.counter "x.count" in
  Control.with_enabled (fun () -> Counter.incr a);
  Alcotest.(check int) "same handle" 1 (Counter.value b);
  Alcotest.(check int) "counter_value" 1 (Registry.counter_value "x.count");
  Alcotest.(check int) "absent name reads 0" 0
    (Registry.counter_value "nope");
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Registry: x.count already registered as a counter")
    (fun () -> ignore (Registry.gauge "x.count"))

let test_registry_reset_keeps_registrations () =
  let c = Registry.counter "y.count" in
  let h = Registry.histogram "y.hist" in
  Control.with_enabled (fun () ->
      Counter.incr c;
      Histogram.observe h 1.0;
      Hop_trace.record (Registry.trace ()) ~uid:9 ~time:1.0 ~node:0 "rx");
  Registry.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Counter.value c);
  Alcotest.(check int) "histogram zeroed" 0 (Histogram.count h);
  Alcotest.(check (list int)) "trace cleared" []
    (List.map (fun (e : Hop_trace.event) -> e.Hop_trace.uid)
       (Hop_trace.recent (Registry.trace ()) 10));
  Alcotest.(check bool) "registration survives" true
    (Registry.find_counter "y.count" <> None)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    i + n <= h && (String.sub haystack i n = needle || go (i + 1))
  in
  n = 0 || go 0

let test_registry_json () =
  let c = Registry.counter "z.count" in
  let h = Registry.histogram "z.hist" in
  Control.with_enabled (fun () ->
      Counter.add c 3;
      Histogram.observe h 2.0;
      Hop_trace.record (Registry.trace ()) ~uid:7 ~time:1.5 ~node:4 "tx");
  let json = Registry.to_json () in
  Alcotest.(check bool) "counter serialized" true
    (contains ~needle:"\"z.count\":3" json);
  Alcotest.(check bool) "histogram serialized" true
    (contains ~needle:"\"z.hist\":{\"count\":1" json);
  Alcotest.(check bool) "trace serialized" true
    (contains ~needle:"\"uid\":7" json);
  Alcotest.(check bool) "trace label serialized" true
    (contains ~needle:"\"event\":\"tx\"" json)

let () =
  let tc name f = Alcotest.test_case name `Quick (wrap f) in
  Alcotest.run "telemetry"
    [ ("control",
       [ tc "scoping" test_control_scoping;
         tc "restores on exception" test_control_restores_on_exception ]);
      ("counter", [ tc "gated by control" test_counter_gated ]);
      ("gauge", [ tc "gated by control" test_gauge_gated ]);
      ("histogram",
       [ tc "point mass" test_histogram_point_mass;
         tc "quantile bounds" test_histogram_quantile_bounds;
         tc "disabled and reset" test_histogram_disabled_and_reset ]);
      ("hop-trace",
       [ tc "per packet" test_trace_per_packet;
         tc "ring wraps" test_trace_ring_wraps;
         tc "disabled" test_trace_disabled ]);
      ("registry",
       [ tc "get or create" test_registry_get_or_create;
         tc "reset keeps registrations" test_registry_reset_keeps_registrations;
         tc "json export" test_registry_json ]) ]
