(* E15 — chaos storms: the same seeded fault plan replayed with fast
   reroute armed and disarmed (§3: "avoid congested, constrained or
   disabled links", now under sustained failure rather than one cut).

   The chaos harness draws a deterministic plan — link flaps with
   Pareto hold times, loss and corruption bursts, control-plane session
   drops — and replays it byte-for-byte in both regimes; IP fallback
   and backoff recovery stay armed throughout, so the only difference
   is the pre-plumbed bypasses. Every packet ends in exactly one
   accounted fate; the lost column is the sum of them. *)

open Mvpn_core
module T = Mvpn_telemetry
module H = Mvpn_resilience.Harness

let seed = 42
let duration = 20.0
let events = 16

let cv = T.Registry.counter_value

type outcome = {
  delivered : int;
  lost : int;
  link_down : int;
  queue : int;
  fault : int;
  net_drops : int;
  frr_switched : int;
  fallback : int;
  resignals : int;
  restore_p99 : float;  (* seconds, per failure episode *)
}

(* Restoration time per failure episode, from the typed event log: a
   protected link restores at its FRR switchover (same tick); an
   unprotected one waits for the link to heal and the first re-signal
   burst after it. Episodes the run's horizon cuts off are skipped. *)
let restoration_lags entries =
  let rec lag_for src dst t0 = function
    | [] -> None
    | (e : T.Event_log.entry) :: rest ->
      if e.T.Event_log.time < t0 then lag_for src dst t0 rest
      else
        (match e.T.Event_log.event with
         | T.Event_log.Frr_switchover { src = s; dst = d }
           when s = src && d = dst ->
           Some (e.T.Event_log.time -. t0)
         | T.Event_log.Link_up { src = s; dst = d } when s = src && d = dst
           ->
           let rec next_resignal = function
             | [] -> None
             | (r : T.Event_log.entry) :: rest ->
               (match r.T.Event_log.event with
                | T.Event_log.Resignal _
                  when r.T.Event_log.time >= e.T.Event_log.time ->
                  Some (r.T.Event_log.time -. t0)
                | _ -> next_resignal rest)
           in
           next_resignal rest
         | _ -> lag_for src dst t0 rest)
  in
  List.filter_map
    (fun (e : T.Event_log.entry) ->
       match e.T.Event_log.event with
       | T.Event_log.Link_down { src; dst } ->
         lag_for src dst e.T.Event_log.time entries
       | _ -> None)
    entries

let p99 lags =
  match List.sort compare lags with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    List.nth sorted (min (n - 1) (int_of_float (ceil (0.99 *. float_of_int n)) - 1))

(* Counters are process-global and benches share the registry, so each
   regime reports deltas, not absolutes. *)
let run_regime ~frr =
  let seq0 =
    match List.rev (T.Event_log.entries (T.Registry.events ())) with
    | last :: _ -> last.T.Event_log.seq
    | [] -> -1
  in
  let d0 = cv "net.delivered" in
  let s0 = cv "resilience.frr.switched" in
  let f0 = cv "resilience.fallback.packets" in
  let r0 = cv "resilience.recovery.resignal" in
  let h =
    H.build ~pops:8 ~vpns:2 ~sites_per_vpn:4 ~events ~load:0.5 ~frr
      ~fallback:true ~seed ~duration ()
  in
  H.run h;
  let p = H.port_totals h in
  let net = Scenario.network (H.scenario h) in
  let net_drops =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Network.drop_counts net)
  in
  let entries =
    List.filter
      (fun (e : T.Event_log.entry) -> e.T.Event_log.seq > seq0)
      (T.Event_log.entries (T.Registry.events ()))
  in
  { delivered = cv "net.delivered" - d0;
    lost = p.H.port_queue + p.H.port_link_down + p.H.port_fault + net_drops;
    link_down = p.H.port_link_down;
    queue = p.H.port_queue;
    fault = p.H.port_fault;
    net_drops;
    frr_switched = cv "resilience.frr.switched" - s0;
    fallback = cv "resilience.fallback.packets" - f0;
    resignals = cv "resilience.recovery.resignal" - r0;
    restore_p99 = p99 (restoration_lags entries) }

let publish tag o =
  let g name v =
    T.Gauge.set
      (T.Registry.gauge (Printf.sprintf "e15.%s.%s" tag name))
      (float_of_int v)
  in
  g "delivered" o.delivered;
  g "lost" o.lost;
  g "link_down_drops" o.link_down;
  g "resilience.frr.switched" o.frr_switched;
  g "resilience.fallback.packets" o.fallback;
  g "resilience.recovery.resignal" o.resignals;
  T.Gauge.set
    (T.Registry.gauge (Printf.sprintf "e15.%s.restore_p99_ms" tag))
    (1e3 *. o.restore_p99)

let run () =
  Tables.heading
    (Printf.sprintf
       "E15: seeded chaos storm (seed %d, %d faults over %.0fs), FRR on \
        vs off" seed events duration);
  let widths = [8; 9; 7; 10; 7; 7; 7; 7; 9; 12] in
  Tables.row widths
    [ "regime"; "delivered"; "lost"; "link-down"; "queue"; "fault"; "net";
      "frr"; "fallback"; "resignal p99" ];
  Tables.rule widths;
  let report tag o =
    Tables.row widths
      [ tag; string_of_int o.delivered; string_of_int o.lost;
        string_of_int o.link_down; string_of_int o.queue;
        string_of_int o.fault; string_of_int o.net_drops;
        string_of_int o.frr_switched; string_of_int o.fallback;
        Printf.sprintf "%.1f ms" (1e3 *. o.restore_p99) ]
  in
  let nofrr = run_regime ~frr:false in
  let frr = run_regime ~frr:true in
  report "no-frr" nofrr;
  report "frr" frr;
  publish "nofrr" nofrr;
  publish "frr" frr;
  T.Gauge.set
    (T.Registry.gauge "e15.frr_gain_packets")
    (float_of_int (nofrr.lost - frr.lost));
  Tables.note
    "\nSame fault timeline, same traffic, same recovery: without\n\
     bypasses every packet in flight across a failed link dies at the\n\
     port (link-down column) until the backoff-paced re-signal heals\n\
     the LSP; with facility backup the point of local repair pushes\n\
     the bypass label the same tick and the column goes to zero. The\n\
     frr/fallback columns count rescued packets; loss and corruption\n\
     bursts hit both regimes identically by construction. The resignal\n\
     p99 — time from a failure to the re-signal burst that restores\n\
     its LSP — is identical across regimes (recovery is the same\n\
     machinery); FRR's contribution is hiding that latency from the\n\
     data plane."
