(* Trace one packet's journey through the MPLS VPN — the hop-by-hop,
   label-by-label picture of the paper's Figure 4.

   Run with:  dune exec examples/trace_path.exe *)

open Mvpn_core
module Engine = Mvpn_sim.Engine
module Topology = Mvpn_sim.Topology
module Prefix = Mvpn_net.Prefix
module Flow = Mvpn_net.Flow
module Packet = Mvpn_net.Packet

let () =
  Printf.printf "== Label-by-label trace across the backbone ==\n\n";
  let bb = Backbone.build ~pops:6 () in
  let hq =
    Backbone.attach_site bb ~id:1 ~name:"hq" ~vpn:1
      ~prefix:(Prefix.of_string_exn "10.0.0.0/16") ~pop:0
  in
  let branch =
    Backbone.attach_site bb ~id:2 ~name:"branch" ~vpn:1
      ~prefix:(Prefix.of_string_exn "10.1.0.0/16") ~pop:2
  in
  let engine = Engine.create () in
  let topo = Backbone.topology bb in
  let net = Network.create engine topo in
  let _vpn = Mpls_vpn.deploy ~net ~backbone:bb ~sites:[hq; branch] () in
  Network.set_sink net branch.Site.ce_node (fun _ -> ());

  let name node =
    if node < 0 then "?" else Topology.node_name topo node
  in
  let labels = function
    | [] -> "unlabelled"
    | ls -> "[" ^ String.concat ";" (List.map string_of_int ls) ^ "]"
  in
  Network.set_tracer net
    (Some
       (fun e ->
          let open Network in
          let what =
            match e.trace_action with
            | Trace_receive (Some from) ->
              Printf.sprintf "received from %s" (name from)
            | Trace_receive None -> "originated here"
            | Trace_transmit nh -> Printf.sprintf "-> queued toward %s" (name nh)
            | Trace_deliver -> "DELIVERED to the site"
            | Trace_drop reason -> Printf.sprintf "DROPPED (%s)" reason
          in
          Printf.printf "  t=%8.4fms  %-8s %-22s %s\n"
            (e.trace_time *. 1e3) (name e.trace_node)
            (labels e.trace_labels) what));

  Printf.printf "EF packet, hq (10.0.0.1) -> branch (10.1.0.1):\n\n";
  let p =
    Packet.make ~vpn:1 ~dscp:Mvpn_net.Dscp.ef ~now:0.0
      (Flow.make (Site.host hq 0) (Site.host branch 0))
  in
  Network.inject net hq.Site.ce_node p;
  Engine.run engine;
  Printf.printf
    "\nReading: the CE forwards plain IP to its PE; the ingress PE\n\
     pushes the two-level stack (top = LDP transport label toward the\n\
     egress PE's loopback, bottom = the BGP-distributed VPN label);\n\
     core LSRs swap the top label only; the penultimate hop pops it\n\
     (PHP); the egress PE pops the VPN label and hands plain IP to the\n\
     destination CE.\n"
