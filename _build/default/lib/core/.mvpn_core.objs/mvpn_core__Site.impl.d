lib/core/site.ml: Format Mvpn_net
