type t = int

let max_value = 0xFFFF_FFFF

let of_int32_exn v =
  if v < 0 || v > max_value then
    invalid_arg (Printf.sprintf "Ipv4.of_int32_exn: %d out of range" v);
  v

let to_int a = a

let of_octets a b c d =
  let check o =
    if o < 0 || o > 255 then
      invalid_arg (Printf.sprintf "Ipv4.of_octets: octet %d out of range" o)
  in
  check a; check b; check c; check d;
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let to_octets a =
  ((a lsr 24) land 0xFF, (a lsr 16) land 0xFF, (a lsr 8) land 0xFF, a land 0xFF)

let of_string s =
  let fail () = Error (Printf.sprintf "Ipv4.of_string: invalid address %S" s) in
  match String.split_on_char '.' s with
  | [a; b; c; d] ->
    let octet o =
      if o = "" || String.length o > 3 then None
      else
        match int_of_string_opt o with
        | Some v when v >= 0 && v <= 255 -> Some v
        | Some _ | None -> None
    in
    begin match octet a, octet b, octet c, octet d with
    | Some a, Some b, Some c, Some d -> Ok (of_octets a b c d)
    | _ -> fail ()
    end
  | _ -> fail ()

let of_string_exn s =
  match of_string s with
  | Ok a -> a
  | Error msg -> invalid_arg msg

let to_string a =
  let x, y, z, w = to_octets a in
  Printf.sprintf "%d.%d.%d.%d" x y z w

let pp ppf a = Format.pp_print_string ppf (to_string a)

let compare = Int.compare
let equal = Int.equal
let hash a = Hashtbl.hash a

let succ a = (a + 1) land max_value
let add a n = (a + n) land max_value

let is_multicast a = a lsr 28 = 0b1110

let any = 0
let broadcast = max_value
let localhost = of_octets 127 0 0 1
