(** Network topology: nodes joined by unidirectional capacitated links.

    Nodes are dense integer ids. A duplex connection is two
    unidirectional links, so asymmetric failures and per-direction
    reservation (the RSVP-TE substrate) fall out naturally. Links carry
    the attributes the paper's machinery needs: capacity, propagation
    delay, an IGP cost, an up/down flag for failure injection, and a
    running TE reservation. *)

type link = {
  id : int;
  src : int;
  dst : int;
  bandwidth : float;  (** capacity, bits per second *)
  delay : float;  (** propagation delay, seconds *)
  mutable cost : int;  (** IGP metric *)
  mutable up : bool;
  mutable reserved : float;  (** TE-reserved bandwidth, bits per second *)
}

type t

val create : unit -> t

val add_node : ?name:string -> t -> int
(** Returns the new node's id (dense, starting at 0). *)

val node_count : t -> int

val node_name : t -> int -> string
(** @raise Invalid_argument on an unknown id. *)

val find_node : t -> string -> int option
(** Look a node up by name (linear scan). *)

val connect :
  ?cost:int -> t -> int -> int -> bandwidth:float -> delay:float ->
  link * link
(** [connect t a b ~bandwidth ~delay] adds the duplex pair a→b, b→a.
    [cost] defaults to 1.
    @raise Invalid_argument on unknown nodes, self-loops, or a duplicate
    link in the same direction. *)

val link_count : t -> int
(** Number of unidirectional links. *)

val links : t -> link list

val link : t -> int -> link
(** Link by id. @raise Invalid_argument on an unknown id. *)

val find_link : t -> int -> int -> link option
(** The a→b link, if present (regardless of its up/down state). *)

val find_link_id : t -> int -> int -> int
(** Allocation-free [find_link]: the directed link's id, or -1 when
    none exists. Backed by a lazily built dense matrix for topologies
    up to 1024 nodes, so the data-plane's per-hop lookup is one array
    read. Resolve the id with {!link}. *)

val neighbors : t -> int -> (int * link) list
(** [neighbors t v] is the (neighbor, outgoing link) pairs of [v],
    including links that are down. *)

val up_neighbors : t -> int -> (int * link) list
(** Only neighbors reachable over links that are up. *)

val set_duplex_state : t -> int -> int -> bool -> unit
(** Bring both directions of the a↔b connection up or down — the
    failure-injection hook. Idempotent: re-asserting the current state
    emits no events, fires no {!on_duplex_change} hooks and leaves
    {!generation} alone.
    @raise Invalid_argument if no such connection exists. *)

val generation : t -> int
(** Monotonic topology mutation counter: bumped by every link added
    and every {e effective} {!set_duplex_state} transition. Consumers
    (e.g. RSVP-TE re-signalling) compare it to avoid repeating work
    against an unchanged topology. *)

val on_duplex_change : t -> (a:int -> b:int -> up:bool -> unit) -> unit
(** Register a hook called after every effective duplex state
    transition (the resilience layer's failure-detection feed). Hooks
    run in registration order; they are never called for idempotent
    re-assertions. *)

val available : link -> float
(** Unreserved capacity: [bandwidth -. reserved], floored at 0. *)

val reserve : link -> float -> bool
(** [reserve l bw] commits [bw] of [l]'s capacity if available; [false]
    (and no change) otherwise. *)

val release : link -> float -> unit
(** Return previously reserved bandwidth (clamped at 0). *)

(** {2 Builders} *)

val line : t -> int -> bandwidth:float -> delay:float -> int array
(** Append a path of n fresh nodes; returns their ids in order. *)

val ring : t -> int -> bandwidth:float -> delay:float -> int array

val star : t -> int -> bandwidth:float -> delay:float -> int * int array
(** [star t n] appends a hub and n leaves; returns (hub, leaves). *)

val full_mesh : t -> int -> bandwidth:float -> delay:float -> int array

val ring_with_chords :
  t -> int -> chords:(int * int) list -> bandwidth:float -> delay:float ->
  int array
(** A ring of n nodes plus chord connections given as index pairs —
    the shape of a provider backbone (POP ring with express links). *)

val random_connected :
  t -> Rng.t -> n:int -> extra_links:int -> bandwidth:float ->
  delay:float -> int array
(** A random spanning tree over n fresh nodes plus [extra_links] random
    additional duplex connections (duplicates skipped). *)
