(* Engine self-profiler: where does a dispatched event's wall time go?

   ROADMAP item 1 stalled on "the residual cost is event dispatch" with
   no instrument behind the claim. This ledger splits per-event wall
   time into the three places it can hide — the queue pop, the handler
   closure, and the batched telemetry flush — and counts scheduled
   events per handler kind, so the next fast-path lever (tx->propagate
   fusion, hook devirtualization) is chosen on measurement.

   Off by default and free when off: the engine picks a profiled or a
   plain run loop once per window, so the per-event path never carries
   a profiling branch, let alone a clock read, until [enable]. Numbers
   are wall-clock and host-dependent, so [publish] exports gauges only
   — never counters, which are gated byte-identical across shard
   counts. *)

(* --- handler kinds ----------------------------------------------------- *)

(* Kinds are registered process-wide at module-init time (like metric
   handles); the table is tiny and mutex-guarded. Counting happens at
   *schedule* time via [Engine.schedule_kind] — tagging at execution
   would mean storing kinds in the queue or wrapping closures, and a
   drained run executes exactly what it schedules, so the scheduled
   count is the executed count for whole-run profiles. *)

type kind = int

let kinds : (string * int) list ref = ref []

let kinds_mutex = Mutex.create ()

let register_kind name =
  Mutex.lock kinds_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock kinds_mutex)
    (fun () ->
       match List.assoc_opt name !kinds with
       | Some id -> id
       | None ->
         let id = List.length !kinds in
         kinds := (name, id) :: !kinds;
         id)

let kind_names () =
  Mutex.lock kinds_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock kinds_mutex)
    (fun () -> List.sort (fun (_, a) (_, b) -> compare a b) !kinds)

(* --- the ledger -------------------------------------------------------- *)

type t = {
  mutable enabled : bool;
  mutable pop_ns : int;
  mutable handler_ns : int;
  mutable flush_ns : int;
  mutable events : int;
  mutable kind_counts : int array;
}

let create () =
  { enabled = false; pop_ns = 0; handler_ns = 0; flush_ns = 0;
    events = 0; kind_counts = [||] }

let enabled t = t.enabled

let enable t = t.enabled <- true

let disable t = t.enabled <- false

let reset t =
  t.pop_ns <- 0;
  t.handler_ns <- 0;
  t.flush_ns <- 0;
  t.events <- 0;
  Array.fill t.kind_counts 0 (Array.length t.kind_counts) 0

(* Monotonic nanoseconds as a native int (63 bits spans ~292 years of
   uptime). The clock primitive is [@@noalloc] with an unboxed result,
   so a profiled loop reads time without allocating. *)
let now_ns () = Int64.to_int (Monotonic_clock.now ())

let note_event t ~pop_ns ~handler_ns =
  t.pop_ns <- t.pop_ns + pop_ns;
  t.handler_ns <- t.handler_ns + handler_ns;
  t.events <- t.events + 1

let note_pop t ns = t.pop_ns <- t.pop_ns + ns

let note_flush t ns = t.flush_ns <- t.flush_ns + ns

let note_kind t k =
  if k >= Array.length t.kind_counts then begin
    let grown = Array.make (k + 8) 0 in
    Array.blit t.kind_counts 0 grown 0 (Array.length t.kind_counts);
    t.kind_counts <- grown
  end;
  t.kind_counts.(k) <- t.kind_counts.(k) + 1

let pop_seconds t = float_of_int t.pop_ns *. 1e-9

let handler_seconds t = float_of_int t.handler_ns *. 1e-9

let flush_seconds t = float_of_int t.flush_ns *. 1e-9

let events t = t.events

let kind_count t k =
  if k < Array.length t.kind_counts then t.kind_counts.(k) else 0

(* --- export ------------------------------------------------------------ *)

module T = Mvpn_telemetry

let publish t =
  T.Control.with_enabled (fun () ->
      let g name = T.Registry.gauge ("sim.profile." ^ name) in
      T.Gauge.set (g "pop_s") (pop_seconds t);
      T.Gauge.set (g "handler_s") (handler_seconds t);
      T.Gauge.set (g "flush_s") (flush_seconds t);
      T.Gauge.set (g "events") (float_of_int t.events);
      List.iter
        (fun (name, id) ->
           T.Gauge.set (g ("kind." ^ name))
             (float_of_int (kind_count t id)))
        (kind_names ()))

let pp ppf t =
  let ev = Stdlib.max 1 t.events in
  Format.fprintf ppf
    "@[<v>profile: %d events@,\
    \  pop     %8.3f ms (%4.0f ns/ev)@,\
    \  handler %8.3f ms (%4.0f ns/ev)@,\
    \  flush   %8.3f ms@]"
    t.events
    (float_of_int t.pop_ns *. 1e-6)
    (float_of_int t.pop_ns /. float_of_int ev)
    (float_of_int t.handler_ns *. 1e-6)
    (float_of_int t.handler_ns /. float_of_int ev)
    (float_of_int t.flush_ns *. 1e-6)
