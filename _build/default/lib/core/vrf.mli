(** VPN routing and forwarding instance.

    One VRF per (PE, VPN) pair that has sites attached there. Each VRF
    has its own route distinguisher and route-target import/export
    lists, and its own longest-prefix-match table over the VPN's private
    address space. Two VRFs on the same PE can hold the same 10.0/16
    without conflict — "identifiers allow a single routing system to
    support multiple VPNs whose internal address spaces overlap" (§4). *)

type next_hop =
  | Local_site of Site.t  (** the prefix is a site attached to this PE *)
  | Remote_pe of { pe : int; vpn_label : int }
      (** reach via an LSP to [pe], inner label [vpn_label] *)
  | Via_neighbor of int
      (** forward as plain IP to an adjacent node — the inter-provider
          Option-A border, where the neighboring carrier's edge router
          is treated like a CE of this VRF *)

type t

val create :
  pe:int -> vpn:int -> rd:Mvpn_routing.Mpbgp.rd ->
  import_rts:Mvpn_routing.Mpbgp.rt list ->
  export_rts:Mvpn_routing.Mpbgp.rt list -> t

val pe : t -> int
val vpn : t -> int
val rd : t -> Mvpn_routing.Mpbgp.rd
val import_rts : t -> Mvpn_routing.Mpbgp.rt list
val export_rts : t -> Mvpn_routing.Mpbgp.rt list

val add_local : t -> Site.t -> unit
(** Install a locally attached site's prefix. *)

val install_remote :
  t -> prefix:Mvpn_net.Prefix.t -> pe:int -> vpn_label:int -> unit

val install_via : t -> prefix:Mvpn_net.Prefix.t -> neighbor:int -> unit
(** Install an Option-A border route: plain-IP forwarding to an
    adjacent carrier's edge router. Survives {!clear_remote}, like
    local routes. *)

val remove : t -> Mvpn_net.Prefix.t -> bool

val lookup : t -> Mvpn_net.Ipv4.t -> next_hop option
(** Longest-prefix match within this VRF only. *)

val route_count : t -> int

val iter_routes : t -> (Mvpn_net.Prefix.t -> next_hop -> unit) -> unit
(** Visit every route in prefix order — the replication fan-out for
    group delivery. *)

val local_sites : t -> Site.t list

val clear_remote : t -> int
(** Drop every remote route (before re-import); returns how many. *)
