(* Streaming runtime invariant auditor: a cheap self-rescheduling
   engine event (the Sampler pattern) that re-proves, every tick, the
   properties the architecture's steady-state claims rest on — packet
   conservation against the authoritative drop table, loop bounds from
   the hop-trace ring, FRR protection coverage, SLO error-budget
   monotonicity, queue-depth sanity and bounded live-heap growth.
   Violations count [audit.violations], emit typed [Invariant_violated]
   events, and optionally fail fast. The checks read plain fields and
   bounded rings, so an audited run stays within a few percent of the
   unaudited rate (E18 gates >= 0.95x). *)

module Engine = Mvpn_sim.Engine
module Packet = Mvpn_net.Packet
module Network = Mvpn_core.Network
module Scenario = Mvpn_core.Scenario
module Port = Mvpn_qos.Port
module Queue_disc = Mvpn_qos.Queue_disc
module T = Mvpn_telemetry

let k_tick = Mvpn_sim.Profile.register_kind "audit.tick"

let m_ticks = T.Registry.counter "audit.ticks"
let m_violations = T.Registry.counter "audit.violations"
let m_conservation = T.Registry.counter "audit.check.conservation"
let m_loops = T.Registry.counter "audit.check.loops"
let m_frr = T.Registry.counter "audit.check.frr"
let m_slo = T.Registry.counter "audit.check.slo"
let m_queues = T.Registry.counter "audit.check.queues"
let m_heap = T.Registry.counter "audit.check.heap"
let m_pool = T.Registry.counter "audit.check.pool"

exception Violation of string * string

let default_interval = 1.0

(* One rx per TTL decrement at most; double it for slack (bypass labels
   carry their own TTL budget). *)
let default_max_hops = 2 * Packet.default_ttl

type qprev = {
  mutable q_enq : int;
  mutable q_deq : int;
  mutable q_tail : int;
  mutable q_red : int;
}

type t = {
  net : Network.t;
  engine : Engine.t;
  interval : float;
  until : float;
  fail_fast : bool;
  max_hops : int;
  heap_slack : float;
  frr : Frr.t option;
  mutable ticks : int;
  mutable violations : int;
  mutable recent : (string * string) list;  (* newest first, capped *)
  mutable stopped : bool;
  (* baselines and high-water marks *)
  mutable frr_base : int option;  (* protected + unprotected links *)
  mutable frr_switched_prev : int;
  slo_prev : (int * int, float) Hashtbl.t;  (* (vpn, band) -> spent *)
  mutable slo_seen : T.Slo.t option;
  queue_prev : (int * int, qprev) Hashtbl.t;  (* (link, band) *)
  mutable heap_base : int option;
  mutable pool_base : int option;
  mutable unattributed_prev : int;
}

let max_recent = 16

let violate t invariant detail =
  t.violations <- t.violations + 1;
  T.Counter.incr m_violations;
  T.Counter.incr (T.Registry.counter ("audit.violation." ^ invariant));
  if !T.Control.enabled then
    T.Event_log.record
      (T.Registry.events ())
      (T.Event_log.Invariant_violated { invariant; detail });
  t.recent <-
    (invariant, detail)
    :: (if List.length t.recent >= max_recent then
          List.filteri (fun i _ -> i < max_recent - 1) t.recent
        else t.recent);
  if t.fail_fast then raise (Violation (invariant, detail))

(* injected + imported + forked
   = delivered + table drops + port drops + exported + consumed + live.
   Both sides are maintained by independent mechanisms (the fate
   counters vs the per-packet [fated] discipline behind [live]), so a
   lost or double-counted fate genuinely unbalances the books. Covers
   unicast and PE-replicated traffic; see Network.flow_totals. *)
let check_conservation t =
  T.Counter.incr m_conservation;
  let f = Network.flow_totals t.net in
  let port = Network.port_drop_total t.net in
  let lhs = f.Network.injected + f.Network.imported + f.Network.forked in
  let rhs =
    f.Network.delivered + f.Network.table_drops + port + f.Network.exported
    + f.Network.consumed + f.Network.live
  in
  if lhs <> rhs then
    violate t "conservation"
      (Printf.sprintf
         "injected=%d imported=%d forked=%d vs delivered=%d table_drops=%d \
          port_drops=%d exported=%d consumed=%d live=%d (lhs=%d rhs=%d)"
         f.Network.injected f.Network.imported f.Network.forked
         f.Network.delivered f.Network.table_drops port f.Network.exported
         f.Network.consumed f.Network.live lhs rhs)

(* With pooling on, [allocated - live - pool] counts packet records
   neither circulating nor retired — leaked. It need not be zero (other
   networks earlier in the process may have leftovers) but must stay
   constant between ticks. Domain-local data only: the pool belongs to
   this domain and [allocated] is process-wide, so the check is valid
   only when no other domain can be allocating — the main domain with
   no cross-shard traffic. Unattributed drops retire live packets that
   were never released; rebase over them. *)
let check_pool t =
  let f = Network.flow_totals t.net in
  if
    Packet.pooling () && Domain.is_main_domain ()
    && f.Network.imported = 0 && f.Network.exported = 0
  then begin
    T.Counter.incr m_pool;
    let offset = Packet.allocated () - f.Network.live - Packet.pool_size () in
    match t.pool_base with
    | Some base
      when f.Network.unattributed = t.unattributed_prev && offset <> base ->
      violate t "pool"
        (Printf.sprintf
           "leak witness moved: allocated=%d live=%d pool=%d offset=%d \
            (baseline %d)"
           (Packet.allocated ()) f.Network.live (Packet.pool_size ()) offset
           base)
    | Some _ when f.Network.unattributed <> t.unattributed_prev ->
      t.pool_base <- Some offset;
      t.unattributed_prev <- f.Network.unattributed
    | Some _ -> ()
    | None ->
      t.pool_base <- Some offset;
      t.unattributed_prev <- f.Network.unattributed
  end

(* No packet incarnation may be received more than [max_hops] times —
   the TTL bound, read back from the hop-trace ring. The ring only
   holds the most recent window, so this is a streaming spot check:
   any loop that outlives the ring shows up in it. Empty ring (trace
   disabled) passes trivially. *)
let check_loops t =
  T.Counter.incr m_loops;
  let ring = T.Registry.trace () in
  let counts : (int, int) Hashtbl.t = Hashtbl.create 512 in
  T.Hop_trace.fold
    (fun () (e : T.Hop_trace.event) ->
       if String.equal e.T.Hop_trace.label "rx" then begin
         let n =
           match Hashtbl.find_opt counts e.T.Hop_trace.uid with
           | Some n -> n + 1
           | None -> 1
         in
         Hashtbl.replace counts e.T.Hop_trace.uid n;
         if n = t.max_hops + 1 then
           violate t "loops"
             (Printf.sprintf "packet uid %d seen rx %d times (bound %d)"
                e.T.Hop_trace.uid n t.max_hops)
       end)
    ring ()

(* Protection coverage: every armed directed link is either protected
   or counted unprotected — the split may shift as chaos rewires
   bypasses, but the superset (their sum) is the armed-link set and
   must not change. The switchover counter may only grow. *)
let check_frr t =
  match t.frr with
  | None -> ()
  | Some f ->
    T.Counter.incr m_frr;
    let s = Frr.stats f in
    let total = s.Frr.protected_links + s.Frr.unprotected_links in
    (match t.frr_base with
     | None -> t.frr_base <- Some total
     | Some base ->
       if total <> base then
         violate t "frr"
           (Printf.sprintf
              "protection superset changed: protected=%d unprotected=%d \
               sum=%d (baseline %d)"
              s.Frr.protected_links s.Frr.unprotected_links total base));
    let switched = T.Registry.counter_value "resilience.frr.switched" in
    if switched < t.frr_switched_prev then
      violate t "frr"
        (Printf.sprintf "resilience.frr.switched went backwards: %d < %d"
           switched t.frr_switched_prev);
    t.frr_switched_prev <- switched

(* Error budget is spent, never refunded: cumulative [budget_spent]
   per (vpn, band) must be non-decreasing tick over tick. Reads
   whichever SLO engine is attached to the network at tick time. *)
let check_slo t =
  match Network.slo t.net with
  | None -> ()
  | Some slo ->
    T.Counter.incr m_slo;
    (match t.slo_seen with
     | Some prev when prev == slo -> ()
     | _ ->
       Hashtbl.reset t.slo_prev;
       t.slo_seen <- Some slo);
    List.iter
      (fun (r : T.Slo.report) ->
         let key = (r.T.Slo.vpn, r.T.Slo.band) in
         (match Hashtbl.find_opt t.slo_prev key with
          | Some prev when r.T.Slo.budget_spent +. 1e-9 < prev ->
            violate t "slo"
              (Printf.sprintf
                 "vpn %d band %d budget_spent went backwards: %g < %g"
                 r.T.Slo.vpn r.T.Slo.band r.T.Slo.budget_spent prev)
          | _ -> ());
         Hashtbl.replace t.slo_prev key r.T.Slo.budget_spent)
      (T.Slo.reports slo)

(* Per-band queue books: cumulative counters only grow, and the implied
   standing depth (enqueued - dequeued - drops) is never negative. *)
let check_queues t =
  T.Counter.incr m_queues;
  Network.iter_ports t.net (fun ~link_id p ->
      let stats = Queue_disc.stats (Port.qdisc p) in
      Array.iteri
        (fun band (bs : Queue_disc.band_stats) ->
           (* [enqueued] counts only accepted packets — tail/RED drops
              are tallied separately, never enqueued — so standing
              depth is the plain difference. *)
           let depth = bs.Queue_disc.enqueued - bs.Queue_disc.dequeued in
           if depth < 0 then
             violate t "queues"
               (Printf.sprintf
                  "link %d band %d negative depth: enq=%d deq=%d tail=%d \
                   red=%d"
                  link_id band bs.Queue_disc.enqueued bs.Queue_disc.dequeued
                  bs.Queue_disc.tail_dropped bs.Queue_disc.red_dropped);
           let key = (link_id, band) in
           match Hashtbl.find_opt t.queue_prev key with
           | None ->
             Hashtbl.add t.queue_prev key
               { q_enq = bs.Queue_disc.enqueued;
                 q_deq = bs.Queue_disc.dequeued;
                 q_tail = bs.Queue_disc.tail_dropped;
                 q_red = bs.Queue_disc.red_dropped }
           | Some prev ->
             if
               bs.Queue_disc.enqueued < prev.q_enq
               || bs.Queue_disc.dequeued < prev.q_deq
               || bs.Queue_disc.tail_dropped < prev.q_tail
               || bs.Queue_disc.red_dropped < prev.q_red
             then
               violate t "queues"
                 (Printf.sprintf
                    "link %d band %d cumulative counter went backwards" link_id
                    band);
             prev.q_enq <- bs.Queue_disc.enqueued;
             prev.q_deq <- bs.Queue_disc.dequeued;
             prev.q_tail <- bs.Queue_disc.tail_dropped;
             prev.q_red <- bs.Queue_disc.red_dropped)
        stats)

(* Bounded residency: the live major heap must not grow without bound
   over a soak. The baseline is taken a few ticks in (after arming
   transients); the bound is generous — a slack factor plus a fixed
   allowance — because this is a leak detector, not a perf gate. *)
let heap_fixed_allowance = 16_000_000  (* words *)

let check_heap t =
  T.Counter.incr m_heap;
  let hw = (Gc.quick_stat ()).Gc.heap_words in
  match t.heap_base with
  | None -> if t.ticks >= 3 then t.heap_base <- Some hw
  | Some base ->
    let bound =
      max
        (int_of_float (t.heap_slack *. float_of_int base))
        (base + heap_fixed_allowance)
    in
    if hw > bound then
      violate t "heap"
        (Printf.sprintf "live heap %d words > bound %d (baseline %d)" hw
           bound base)

let run_checks t =
  check_conservation t;
  check_pool t;
  check_loops t;
  check_frr t;
  check_slo t;
  check_queues t;
  check_heap t

let stop t = t.stopped <- true

let ticks t = t.ticks
let violations t = t.violations
let recent_violations t = List.rev t.recent

let start ?(interval = default_interval) ?until ?(fail_fast = false)
    ?(max_hops = default_max_hops) ?(heap_slack = 4.0) ?frr sc =
  if not (Float.is_finite interval && interval > 0.0) then
    invalid_arg
      (Printf.sprintf
         "Audit.start: interval must be finite and positive, got %g" interval);
  let until =
    match until with
    | Some h when Float.is_nan h || h < 0.0 ->
      invalid_arg "Audit.start: until must be >= 0"
    | Some h -> h
    | None -> infinity
  in
  if max_hops < 1 then invalid_arg "Audit.start: max_hops must be >= 1";
  if not (heap_slack >= 1.0) then
    invalid_arg "Audit.start: heap_slack must be >= 1";
  let net = Scenario.network sc in
  let engine = Scenario.engine sc in
  let t =
    { net; engine; interval; until; fail_fast; max_hops; heap_slack; frr;
      ticks = 0; violations = 0; recent = []; stopped = false;
      frr_base = None; frr_switched_prev = 0;
      slo_prev = Hashtbl.create 16; slo_seen = None;
      queue_prev = Hashtbl.create 64; heap_base = None; pool_base = None;
      unattributed_prev = 0 }
  in
  let rec tick () =
    if (not t.stopped) && Engine.now engine <= t.until then begin
      t.ticks <- t.ticks + 1;
      T.Counter.incr m_ticks;
      run_checks t;
      Engine.schedule_kind engine ~kind:k_tick ~delay:t.interval tick
    end
  in
  Engine.schedule_kind engine ~kind:k_tick ~delay:t.interval tick;
  t
