lib/mpls/plane.mli: Fec Label Lfib
