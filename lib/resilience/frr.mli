(** MPLS fast reroute: facility-backup bypass LSPs.

    For every protected directed link a→b, precompute a CSPF bypass
    path from a to b that excludes the protected link (both
    directions), install its label-switched path into the transit
    LFIBs, and bind an {!Mvpn_mpls.Lfib.protection} record at a — the
    point of local repair. When a→b dies, {!Mvpn_core.Network.transmit}
    pushes the bypass label the same tick and the packet merges back at
    b (PHP at the bypass penultimate hop) carrying exactly the stack
    the dead link would have delivered, labelled or plain IP.

    Links with no alternate path (single-homed access legs, partitioned
    cores) stay unprotected — counted, never silent: the
    [resilience.frr.protected_links] / [resilience.frr.unprotected_links]
    counters mirror {!stats}, and unprotected traffic falls to the
    port's link-down accounting (or the PE's IP fallback). *)

type stats = { protected_links : int; unprotected_links : int }

type t

val arm : ?links:(int * int) list -> Mvpn_core.Network.t -> t
(** Compute and install bypasses for the given directed (PLR, next
    hop) pairs — default: every directed link of the topology. Call
    with all links up (typically right after deployment). *)

val rearm : t -> unit
(** Retire every installed bypass entry and protection record, then
    recompute against the current topology — after reconvergence, so
    bypass paths track the surviving graph. *)

val stats : t -> stats
