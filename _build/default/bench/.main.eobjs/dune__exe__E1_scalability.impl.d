bench/e1_scalability.ml: Backbone List Mpls_vpn Mvpn_core Mvpn_net Mvpn_routing Mvpn_sim Network Overlay Printf Tables
