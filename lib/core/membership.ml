type mechanism = Directory | Flooded

type t = {
  mechanism : mechanism;
  pe_count : int;
  mutable sites : Site.t list;  (* reverse join order *)
  by_id : (int, Site.t) Hashtbl.t;
  vpn_sizes : (int, int) Hashtbl.t;  (* vpn -> live member count *)
  pe_sizes : (int, int) Hashtbl.t;  (* pe -> attached member count *)
  mutable messages : int;
}

let create ?(mechanism = Directory) ~pe_count () =
  { mechanism; pe_count; sites = []; by_id = Hashtbl.create 64;
    vpn_sizes = Hashtbl.create 16; pe_sizes = Hashtbl.create 16;
    messages = 0 }

let size tbl k = Option.value ~default:0 (Hashtbl.find_opt tbl k)

let bump tbl k d =
  let n = size tbl k + d in
  if n <= 0 then Hashtbl.remove tbl k else Hashtbl.replace tbl k n

let members t ~vpn =
  List.rev (List.filter (fun (s : Site.t) -> s.Site.vpn = vpn) t.sites)

(* The join itself is O(1): dup check, notification cost and the per-PE
   attachment count all come from the index tables, never from a walk
   of the member list — mass provisioning (100k+ sites, E19) joins in
   linear total time. *)
let join_one t (site : Site.t) =
  let cost =
    match t.mechanism with
    | Directory ->
      (* Register with the server, then notify each existing member of
         the same VPN. *)
      1 + size t.vpn_sizes site.Site.vpn
    | Flooded ->
      (* Advertised to every PE in the provider network. *)
      t.pe_count
  in
  t.messages <- t.messages + cost;
  t.sites <- site :: t.sites;
  Hashtbl.replace t.by_id site.Site.id site;
  bump t.vpn_sizes site.Site.vpn 1;
  bump t.pe_sizes site.Site.pe_node 1

let reject_member t (site : Site.t) =
  if Hashtbl.mem t.by_id site.Site.id then
    invalid_arg
      (Printf.sprintf "Membership.join: site %d already a member"
         site.Site.id)

let join t site =
  reject_member t site;
  join_one t site

let join_all t sites =
  (* Validate the whole batch before touching any state, so a bad batch
     is rejected atomically — including duplicates within the batch. *)
  let seen = Hashtbl.create (List.length sites) in
  List.iter
    (fun (site : Site.t) ->
       reject_member t site;
       if Hashtbl.mem seen site.Site.id then
         invalid_arg
           (Printf.sprintf "Membership.join: site %d already a member"
              site.Site.id);
       Hashtbl.replace seen site.Site.id ())
    sites;
  List.iter (join_one t) sites

let leave t ~site_id =
  match Hashtbl.find_opt t.by_id site_id with
  | None -> false
  | Some site ->
    t.sites <- List.filter (fun (s : Site.t) -> s.Site.id <> site_id) t.sites;
    Hashtbl.remove t.by_id site_id;
    bump t.vpn_sizes site.Site.vpn (-1);
    bump t.pe_sizes site.Site.pe_node (-1);
    let cost =
      match t.mechanism with
      | Directory -> 1 + size t.vpn_sizes site.Site.vpn
      | Flooded -> t.pe_count
    in
    t.messages <- t.messages + cost;
    true

let discover t ~asking =
  t.messages <- t.messages + 1;
  List.filter
    (fun (s : Site.t) -> s.Site.id <> asking.Site.id)
    (members t ~vpn:asking.Site.vpn)

let vpn_ids t =
  List.sort Int.compare
    (Hashtbl.fold (fun vpn _ acc -> vpn :: acc) t.vpn_sizes [])

let site_count t = Hashtbl.length t.by_id

let messages t = t.messages

let pe_attachment_count t ~pe = size t.pe_sizes pe
