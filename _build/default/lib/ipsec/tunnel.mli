(** An IPSec ESP tunnel between two gateway addresses.

    [encapsulate] wraps a packet in tunnel-mode ESP: outer header
    between the gateways, size grown by the exact ESP overhead, inner
    header marked unreadable, an ESP sequence number stamped from the
    outbound SA, and — the paper's C4 knob — the inner ToS byte either
    copied to the outer header ([copy_tos:true], RFC 2983 uniform model)
    or left best-effort so the backbone cannot see the service class.

    Both operations return the crypto processing delay the gateway
    spends on the packet; the caller adds it to the simulation clock. *)

type t
(** One direction of a gateway pair: packets are encapsulated at
    [local] and decapsulated at [remote]. A duplex connection is two
    tunnels with swapped endpoints (each with its own SA pair, as real
    IPSec requires). *)

val create :
  ?copy_tos:bool ->
  cipher:Crypto.cipher ->
  local:Mvpn_net.Ipv4.t ->
  remote:Mvpn_net.Ipv4.t ->
  key:int64 ->
  unit -> t
(** [copy_tos] defaults to [false] — the paper's problem case. *)

val copy_tos : t -> bool
val cipher : t -> Crypto.cipher

val encapsulate : t -> Mvpn_net.Packet.t -> float
(** Wrap; returns encryption delay.
    @raise Invalid_argument if the packet is already encapsulated. *)

type decap_result =
  | Decapsulated of float  (** decryption delay *)
  | Replayed  (** dropped by the anti-replay window *)
  | Not_ours
      (** outer destination is not this tunnel's decapsulating (remote)
          gateway *)

val decapsulate : t -> Mvpn_net.Packet.t -> decap_result

val packets_sent : t -> int
val replay_drops : t -> int
