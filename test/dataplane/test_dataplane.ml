(* The compiled dataplane's contract: with the route caches armed it is
   observationally identical to the uncached reference path — same
   deliveries, same drop reasons, same hop-by-hop traces — and a
   generation bump (reconvergence, LDP re-splice, interceptor change)
   invalidates every cached answer before the next packet. *)

open Mvpn_core
module Engine = Mvpn_sim.Engine
module Topology = Mvpn_sim.Topology
module Prefix = Mvpn_net.Prefix
module Ipv4 = Mvpn_net.Ipv4
module Flow = Mvpn_net.Flow
module Packet = Mvpn_net.Packet
module Fib = Mvpn_net.Fib
module Plane = Mvpn_mpls.Plane
module Ldp = Mvpn_mpls.Ldp
module Fec = Mvpn_mpls.Fec

let pfx = Prefix.of_string_exn

let action_string = function
  | Network.Trace_receive (Some n) -> Printf.sprintf "rx<%d" n
  | Network.Trace_receive None -> "rx<inject"
  | Network.Trace_transmit n -> Printf.sprintf "tx>%d" n
  | Network.Trace_deliver -> "deliver"
  | Network.Trace_drop r -> "drop:" ^ r

let event_string (e : Network.trace_event) =
  Printf.sprintf "%.9f n%d u%d [%s] %s" e.Network.trace_time
    e.Network.trace_node e.Network.trace_uid
    (String.concat ";" (List.map string_of_int e.Network.trace_labels))
    (action_string e.Network.trace_action)

(* One deterministic MPLS VPN scenario with mid-run churn (link failure
   + full reconvergence between two injection waves). Returns every
   observable: the full trace, per-site delivery log, drop counts. *)
let vpn_observables ~cache ~pops ~chord ~failed_link ~nsites =
  Packet.reset_uid_counter ();
  (* The diagonal is never a ring link for pops >= 4, so the chord can
     always be added without duplicating an edge. *)
  let bb =
    Backbone.build ~pops ~chords:(if chord then [(0, pops / 2)] else []) ()
  in
  let sites =
    List.init nsites (fun i ->
        Backbone.attach_site bb ~id:i ~name:(Printf.sprintf "s%d" i) ~vpn:1
          ~prefix:(Prefix.make (Ipv4.of_octets 10 i 0 0) 16)
          ~pop:(i mod pops))
  in
  let engine = Engine.create () in
  let net = Network.create ~route_cache:cache engine (Backbone.topology bb) in
  let vpn = Mpls_vpn.deploy ~net ~backbone:bb ~sites () in
  let events = ref [] in
  Network.set_tracer net
    (Some (fun e -> events := event_string e :: !events));
  let deliveries = ref [] in
  List.iter
    (fun (s : Site.t) ->
       Network.set_sink net s.Site.ce_node (fun p ->
           deliveries := (s.Site.id, p.Packet.uid) :: !deliveries))
    sites;
  let wave () =
    List.iter
      (fun (a : Site.t) ->
         List.iter
           (fun (b : Site.t) ->
              if a.Site.id <> b.Site.id then
                Network.inject net a.Site.ce_node
                  (Packet.make ~vpn:1 ~now:(Engine.now engine)
                     (Flow.make
                        (Prefix.nth_host a.Site.prefix 1)
                        (Prefix.nth_host b.Site.prefix 1))))
           sites)
      sites;
    Engine.run engine
  in
  wave ();
  Topology.set_duplex_state (Backbone.topology bb)
    (Backbone.pops bb).(failed_link mod pops)
    (Backbone.pops bb).((failed_link + 1) mod pops)
    false;
  ignore (Mpls_vpn.reconverge vpn);
  wave ();
  (List.rev !events, List.rev !deliveries, Network.drop_counts net)

let equivalence_property =
  QCheck.Test.make
    ~name:"cached dataplane observationally equal to uncached, with churn"
    ~count:10
    QCheck.(quad (int_range 4 6) bool (int_range 0 5) (int_range 2 4))
    (fun (pops, chord, failed_link, nsites) ->
       (* The shrinker can step outside the generator's range; clamp so
          every shrunk candidate is still a buildable scenario. *)
       let pops = max 4 (min 6 pops) in
       let failed_link = abs failed_link mod pops in
       let nsites = max 2 (min 4 nsites) in
       let reference =
         vpn_observables ~cache:false ~pops ~chord ~failed_link ~nsites
       in
       let cached =
         vpn_observables ~cache:true ~pops ~chord ~failed_link ~nsites
       in
       reference = cached)

(* Same identity on the plain-MPLS ingress path: auto-FTN label push
   from a cached FTN answer, LDP-installed LSP, line topology. *)
let test_auto_ftn_equivalence () =
  let run ~cache =
    Packet.reset_uid_counter ();
    let topo = Topology.create () in
    let ids = Topology.line topo 4 ~bandwidth:1e6 ~delay:0.001 in
    let engine = Engine.create () in
    let net = Network.create ~route_cache:cache engine topo in
    Array.iteri
      (fun i id ->
         Fib.add (Network.fib net id) (pfx "10.9.0.0/16")
           { Fib.next_hop =
               (if i < 3 then ids.(i + 1) else Fib.local_delivery);
             cost = 1; source = Fib.Static })
      ids;
    ignore
      (Ldp.distribute topo (Network.plane net)
         ~fecs:[ (pfx "10.9.0.0/16", ids.(3)) ]);
    Network.set_auto_ftn net true;
    let events = ref [] in
    Network.set_tracer net
      (Some (fun e -> events := event_string e :: !events));
    let delivered = ref [] in
    Network.set_sink net ids.(3) (fun p ->
        delivered := p.Packet.uid :: !delivered);
    for i = 0 to 19 do
      Network.inject net ids.(0)
        (Packet.make ~now:(Engine.now engine)
           (Flow.make
              (Ipv4.of_octets 10 0 0 1)
              (Ipv4.of_octets 10 9 0 (i land 3))))
    done;
    Engine.run engine;
    (List.rev !events, List.rev !delivered, Network.drop_counts net)
  in
  let (e1, d1, c1) = run ~cache:false in
  let (e2, d2, c2) = run ~cache:true in
  Alcotest.(check (list string)) "traces" e1 e2;
  Alcotest.(check (list int)) "deliveries" d1 d2;
  Alcotest.(check int) "all delivered" 20 (List.length d1);
  Alcotest.(check (list (pair string int))) "drops" c1 c2;
  (* The LDP push actually happened: some hop carried a label stack. *)
  let labelled s =
    match String.index_opt s '[' with
    | Some i -> i + 1 < String.length s && s.[i + 1] <> ']'
    | None -> false
  in
  Alcotest.(check bool) "labelled hop seen" true (List.exists labelled e1)

(* E13-style staleness: warm the caches across a link, fail it,
   reconverge — not one packet may still follow the dead next hop. *)
let test_reconvergence_staleness () =
  let bb = Backbone.build ~pops:6 ~chords:[] () in
  let site_a =
    Backbone.attach_site bb ~id:0 ~name:"a" ~vpn:1
      ~prefix:(pfx "10.0.0.0/16") ~pop:0
  in
  let site_b =
    Backbone.attach_site bb ~id:1 ~name:"b" ~vpn:1
      ~prefix:(pfx "10.1.0.0/16") ~pop:1
  in
  let engine = Engine.create () in
  let net =
    Network.create ~route_cache:true engine (Backbone.topology bb)
  in
  let vpn = Mpls_vpn.deploy ~net ~backbone:bb ~sites:[site_a; site_b] () in
  let delivered = ref 0 in
  Network.set_sink net site_b.Site.ce_node (fun _ -> incr delivered);
  Network.set_sink net site_a.Site.ce_node (fun _ -> ());
  let send () =
    Network.inject net site_a.Site.ce_node
      (Packet.make ~vpn:1 ~now:(Engine.now engine)
         (Flow.make
            (Prefix.nth_host site_a.Site.prefix 1)
            (Prefix.nth_host site_b.Site.prefix 1)));
    Engine.run engine
  in
  (* Warm every cache on the pop0->pop1 path. *)
  send ();
  Alcotest.(check int) "warmup delivered" 1 !delivered;
  let pops = Backbone.pops bb in
  let recompiles_before = Dataplane.recompiles (Network.dataplane net) in
  Topology.set_duplex_state (Backbone.topology bb) pops.(0) pops.(1) false;
  ignore (Mpls_vpn.reconverge vpn);
  (* Watch every forwarding step after the failure. *)
  let stale = ref 0 in
  Network.set_tracer net
    (Some
       (fun (e : Network.trace_event) ->
          match e.Network.trace_action with
          | Network.Trace_transmit to_
            when (e.Network.trace_node = pops.(0) && to_ = pops.(1))
              || (e.Network.trace_node = pops.(1) && to_ = pops.(0)) ->
            incr stale
          | _ -> ()));
  send ();
  Alcotest.(check int) "delivered after failure" 2 !delivered;
  Alcotest.(check int) "no packet used the dead link" 0 !stale;
  Alcotest.(check bool) "generation bump recompiled the pipelines" true
    (Dataplane.recompiles (Network.dataplane net) > recompiles_before)

(* Cache hit/miss telemetry: the counters the operator story (and
   `mvpn stats`) rests on actually move, and only when the cache is on. *)
let test_cache_counters () =
  Mvpn_telemetry.Control.with_enabled (fun () ->
      let fib_hits () =
        Mvpn_telemetry.Registry.counter_value "fib.cache.hit"
      in
      let fib_misses () =
        Mvpn_telemetry.Registry.counter_value "fib.cache.miss"
      in
      let hits0 = fib_hits () and misses0 = fib_misses () in
      let topo = Topology.create () in
      let ids = Topology.line topo 2 ~bandwidth:1e6 ~delay:0.001 in
      let engine = Engine.create () in
      let net = Network.create ~route_cache:true engine topo in
      Fib.add (Network.fib net ids.(0)) (pfx "10.9.0.0/16")
        { Fib.next_hop = ids.(1); cost = 1; source = Fib.Static };
      Fib.add (Network.fib net ids.(1)) (pfx "10.9.0.0/16")
        { Fib.next_hop = Fib.local_delivery; cost = 1; source = Fib.Static };
      Network.set_sink net ids.(1) (fun _ -> ());
      for _ = 1 to 5 do
        Network.inject net ids.(0)
          (Packet.make ~now:(Engine.now engine)
             (Flow.make (Ipv4.of_octets 10 0 0 1) (Ipv4.of_octets 10 9 0 1)))
      done;
      Engine.run engine;
      (* 10 lookups total (2 nodes x 5 packets): 2 cold misses, 8 hits. *)
      Alcotest.(check int) "hits" 8 (fib_hits () - hits0);
      Alcotest.(check int) "misses" 2 (fib_misses () - misses0))

(* find_ftn serves from the memo until a binding moves, then re-reads. *)
let test_find_ftn_invalidation () =
  let nodes = 2 in
  let plane = Plane.create ~nodes in
  let fibs = Array.init nodes (fun _ -> Fib.create ()) in
  let dp = Dataplane.create ~cache:true ~nodes ~plane ~fibs () in
  let fec = Fec.Prefix_fec (pfx "10.9.0.0/16") in
  Alcotest.(check bool) "unbound" true (Dataplane.find_ftn dp 0 fec = None);
  Plane.install_ftn plane 0 fec { Plane.push = 42; next_hop = 1 };
  (match Dataplane.find_ftn dp 0 fec with
   | Some e -> Alcotest.(check int) "new binding visible" 42 e.Plane.push
   | None -> Alcotest.fail "binding not visible after install");
  Plane.install_ftn plane 0 fec { Plane.push = 43; next_hop = 1 };
  (match Dataplane.find_ftn dp 0 fec with
   | Some e -> Alcotest.(check int) "rebind visible" 43 e.Plane.push
   | None -> Alcotest.fail "binding lost after reinstall");
  ignore (Plane.remove_ftn plane 0 fec);
  Alcotest.(check bool) "removal visible" true
    (Dataplane.find_ftn dp 0 fec = None)

(* Interceptor chains recompile on registration and keep the
   first-Consumed-wins prepend order. *)
let test_interceptor_chain_order () =
  let plane = Plane.create ~nodes:1 in
  let fibs = [| Fib.create () |] in
  let dp = Dataplane.create ~cache:true ~nodes:1 ~plane ~fibs () in
  let hits = ref [] in
  Dataplane.set_hooks dp
    { Dataplane.transmit = (fun ~from:_ ~to_:_ _ -> ());
      deliver = (fun ~node:_ _ -> ());
      drop = (fun ~node:_ _ _ -> hits := "drop" :: !hits);
      notify_receive = (fun ~node:_ ~from:_ _ -> ()) };
  let mk name verdict =
    fun ~from:_ _ ->
      hits := name :: !hits;
      verdict
  in
  Dataplane.add_interceptor dp 0 (mk "first" Dataplane.Continue);
  Dataplane.add_interceptor dp 0 (mk "second" Dataplane.Continue);
  let p =
    Packet.make ~now:0.0
      (Flow.make (Ipv4.of_octets 10 0 0 1) (Ipv4.of_octets 10 9 0 1))
  in
  Dataplane.receive dp 0 ~from:None p;
  (* Prepend order: "second" runs before "first"; neither consumed, so
     the packet fell through to IP lookup and dropped (empty FIB). *)
  Alcotest.(check (list string)) "order then drop" ["drop"; "first"; "second"]
    !hits;
  hits := [];
  Dataplane.add_interceptor dp 0 (mk "third" Dataplane.Consumed);
  Dataplane.receive dp 0 ~from:None p;
  Alcotest.(check (list string)) "consumed short-circuits" ["third"] !hits

let () =
  Alcotest.run "dataplane"
    [ ("equivalence",
       [ QCheck_alcotest.to_alcotest equivalence_property;
         Alcotest.test_case "auto-ftn path identical" `Quick
           test_auto_ftn_equivalence ]);
      ("invalidation",
       [ Alcotest.test_case "reconvergence staleness" `Quick
           test_reconvergence_staleness;
         Alcotest.test_case "find_ftn follows bindings" `Quick
           test_find_ftn_invalidation ]);
      ("pipeline",
       [ Alcotest.test_case "cache counters" `Quick test_cache_counters;
         Alcotest.test_case "interceptor order" `Quick
           test_interceptor_chain_order ]) ]
