(* Traffic engineering in the backbone (§5): plain shortest-path
   forwarding piles a skewed traffic matrix onto the ring's direct
   links; constraint-based routed RSVP-TE tunnels spread the same
   demands over the express chords and the long way around.

   Run with:  dune exec examples/te_backbone.exe *)

open Mvpn_core
module Topology = Mvpn_sim.Topology
module Rsvp_te = Mvpn_mpls.Rsvp_te
module Plane = Mvpn_mpls.Plane

let () =
  Printf.printf "== Traffic engineering vs shortest-path routing ==\n\n";
  (* Demands chosen so every shortest path wants the same express
     chord (POP 0 ↔ POP 6): 4 × 20 Mb/s against a 45 Mb/s link. *)
  let demands _pops = [(0, 6, 20e6); (1, 6, 20e6); (11, 6, 20e6); (0, 7, 20e6)] in

  let run admission =
    let bb = Backbone.build ~pops:12 () in
    let topo = Backbone.topology bb in
    let plane = Plane.create ~nodes:(Topology.node_count topo) in
    let te = Rsvp_te.create topo plane in
    let accepted = ref 0 and refused = ref 0 in
    List.iter
      (fun (src_pop, dst_pop, bw) ->
         let pops = Backbone.pops bb in
         match
           Rsvp_te.signal te ~admission ~src:pops.(src_pop)
             ~dst:pops.(dst_pop) ~bandwidth:bw
         with
         | Ok _ -> incr accepted
         | Error _ -> incr refused)
      (demands 12);
    let links = Topology.links topo in
    let max_frac =
      List.fold_left
        (fun acc l -> Float.max acc (Rsvp_te.reserved_fraction te l))
        0.0 links
    in
    let loaded =
      List.length
        (List.filter (fun (l : Topology.link) -> l.Topology.reserved > 0.0)
           links)
    in
    let over = List.length (Rsvp_te.overcommitted_links te) in
    (!accepted, !refused, max_frac, loaded, over)
  in

  let print name (accepted, refused, max_frac, loaded, over) =
    Printf.printf
      "%-28s accepted=%d refused=%d max-link-load=%3.0f%% links-used=%d overcommitted=%d\n"
      name accepted refused (max_frac *. 100.0) loaded over
  in
  Printf.printf "4 demands of 20 Mb/s across a 45 Mb/s ring backbone:\n\n";
  print "shortest-path (IGP only)" (run Rsvp_te.Igp_only);
  print "constraint-based (CSPF)" (run Rsvp_te.Cspf);
  Printf.printf
    "\nIGP-only routing stacks every demand on the same shortest arcs\n\
     (oversubscribing them); CSPF admission spreads the tunnels across\n\
     more links and keeps every reservation within capacity.\n"
