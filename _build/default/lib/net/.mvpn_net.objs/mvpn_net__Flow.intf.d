lib/net/flow.mli: Format Ipv4
