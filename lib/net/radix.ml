(* Path-compressed binary trie. Invariants:
   - every node's prefix strictly extends its parent's prefix;
   - the left (right) child's network has bit 0 (1) at the position just
     past the parent's mask length;
   - the root covers 0.0.0.0/0 and is never removed;
   - internal "glue" nodes may carry no value but always have two
     children (compaction splices out valueless one-child nodes). *)

type 'a node = {
  prefix : Prefix.t;
  mutable value : 'a option;
  mutable left : 'a node option;
  mutable right : 'a node option;
}

type 'a t = {
  mutable root : 'a node;
  mutable count : int;
  (* Monotonic mutation counter: bumped by every completed [add],
     successful [remove] and [clear]. Caches built over a snapshot of
     the trie compare generations to detect staleness in O(1). *)
  mutable gen : int;
}

let fresh_root () =
  { prefix = Prefix.default; value = None; left = None; right = None }

let create () = { root = fresh_root (); count = 0; gen = 0 }

let generation t = t.gen

let is_empty t = t.count = 0

let cardinal t = t.count

let leaf prefix v = { prefix; value = Some v; left = None; right = None }

let child node dir = if dir then node.right else node.left

let set_child node dir c =
  if dir then node.right <- c else node.left <- c

(* Longest prefix subsuming both [p] and [q]. *)
let common_prefix p q =
  let np = Ipv4.to_int (Prefix.network p)
  and nq = Ipv4.to_int (Prefix.network q) in
  let max_len = min (Prefix.length p) (Prefix.length q) in
  let rec first_diff i =
    if i >= max_len then max_len
    else if (np lxor nq) land (1 lsl (31 - i)) <> 0 then i
    else first_diff (i + 1)
  in
  Prefix.make (Prefix.network p) (first_diff 0)

let add t p v =
  let rec go node =
    if Prefix.equal node.prefix p then begin
      if node.value = None then t.count <- t.count + 1;
      node.value <- Some v
    end else
      (* node.prefix strictly subsumes p here. *)
      let dir = Prefix.bit p (Prefix.length node.prefix) in
      match child node dir with
      | None ->
        set_child node dir (Some (leaf p v));
        t.count <- t.count + 1
      | Some c ->
        if Prefix.subsumes c.prefix p then go c
        else if Prefix.subsumes p c.prefix then begin
          let mid = leaf p v in
          set_child mid (Prefix.bit c.prefix (Prefix.length p)) (Some c);
          set_child node dir (Some mid);
          t.count <- t.count + 1
        end else begin
          let g = common_prefix p c.prefix in
          let glue =
            { prefix = g; value = None; left = None; right = None }
          in
          set_child glue (Prefix.bit p (Prefix.length g)) (Some (leaf p v));
          set_child glue (Prefix.bit c.prefix (Prefix.length g)) (Some c);
          set_child node dir (Some glue);
          t.count <- t.count + 1
        end
  in
  go t.root;
  t.gen <- t.gen + 1

let find t p =
  let rec go node =
    if Prefix.equal node.prefix p then node.value
    else if Prefix.length node.prefix >= 32 then None
    else
      let dir = Prefix.bit p (Prefix.length node.prefix) in
      match child node dir with
      | Some c when Prefix.subsumes c.prefix p -> go c
      | Some _ | None -> None
  in
  if Prefix.subsumes t.root.prefix p then go t.root else None

(* Splice out a node that no longer justifies its existence. *)
let compact node =
  match node.value, node.left, node.right with
  | None, None, None -> None
  | None, Some only, None | None, None, Some only -> Some only
  | (Some _ | None), _, _ -> Some node

let remove t p =
  let removed = ref false in
  let rec go node =
    if Prefix.equal node.prefix p then begin
      if node.value <> None then begin
        removed := true;
        t.count <- t.count - 1
      end;
      node.value <- None;
      compact node
    end else if Prefix.length node.prefix >= 32 then Some node
    else begin
      let dir = Prefix.bit p (Prefix.length node.prefix) in
      (match child node dir with
       | Some c when Prefix.subsumes c.prefix p ->
         set_child node dir (go c)
       | Some _ | None -> ());
      if !removed then compact node else Some node
    end
  in
  if not (Prefix.subsumes t.root.prefix p) then false
  else begin
    (match go t.root with
     | Some r when Prefix.equal r.prefix Prefix.default -> t.root <- r
     | Some r ->
       (* The /0 root was compacted away; re-root above the survivor. *)
       let root = fresh_root () in
       set_child root (Prefix.bit r.prefix 0) (Some r);
       t.root <- root
     | None -> t.root <- fresh_root ());
    if !removed then t.gen <- t.gen + 1;
    !removed
  end

let m_lookup_depth =
  Mvpn_telemetry.Registry.histogram ~lo:1.0 "fib.lookup_depth"

(* The best-match walk remembers the deepest node that carries a value
   and allocates nothing along the way — {!lookup_value} returns that
   node's own [value] field. The depth-counting walk is a separate
   function selected by one flag check at entry, so the disabled path
   (the per-packet LPM that E0 races) is exactly the uninstrumented
   loop. *)
let addr_bit a i = Ipv4.to_int a land (1 lsl (31 - i)) <> 0

let rec best_go a node best =
  let best = match node.value with Some _ -> node | None -> best in
  if Prefix.length node.prefix >= 32 then best
  else
    match child node (addr_bit a (Prefix.length node.prefix)) with
    | Some c when Prefix.mem a c.prefix -> best_go a c best
    | Some _ | None -> best

let rec best_go_depth a node best depth =
  let best = match node.value with Some _ -> node | None -> best in
  if Prefix.length node.prefix >= 32 then begin
    Mvpn_telemetry.Histogram.observe_int m_lookup_depth depth;
    best
  end
  else
    match child node (addr_bit a (Prefix.length node.prefix)) with
    | Some c when Prefix.mem a c.prefix -> best_go_depth a c best (depth + 1)
    | Some _ | None ->
      Mvpn_telemetry.Histogram.observe_int m_lookup_depth depth;
      best

(* The root doubles as the "nothing yet" seed: its value is matched,
   not assumed, so a valueless root contributes [None] naturally. *)
let best_node t a =
  if not !Mvpn_telemetry.Control.enabled then best_go a t.root t.root
  else best_go_depth a t.root t.root 1

let lookup t a =
  let b = best_node t a in
  match b.value with Some v -> Some (b.prefix, v) | None -> None

let lookup_value t a = (best_node t a).value

let fold f t init =
  let rec go node acc =
    let acc =
      match node.value with
      | Some v -> f node.prefix v acc
      | None -> acc
    in
    let acc = match node.left with Some c -> go c acc | None -> acc in
    match node.right with Some c -> go c acc | None -> acc
  in
  go t.root init

let iter f t = fold (fun p v () -> f p v) t ()

let to_list t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])

let of_list bindings =
  let t = create () in
  List.iter (fun (p, v) -> add t p v) bindings;
  t

let clear t =
  t.root <- fresh_root ();
  t.count <- 0;
  t.gen <- t.gen + 1
