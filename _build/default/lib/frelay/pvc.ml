type contract = {
  cir_bps : float;
  bc_bits : float;
  be_bits : float;
}

let default_contract ~cir_bps =
  { cir_bps; bc_bits = cir_bps; be_bits = cir_bps }

type t = {
  contract : contract;
  mutable committed_credit : float;  (* bits *)
  mutable excess_credit : float;
  mutable last : float;
  mutable n_committed : int;
  mutable n_excess : int;
  mutable n_dropped : int;
}

let create contract =
  if contract.cir_bps <= 0.0 then invalid_arg "Pvc.create: CIR must be positive";
  if contract.bc_bits <= 0.0 then invalid_arg "Pvc.create: Bc must be positive";
  if contract.be_bits < 0.0 then invalid_arg "Pvc.create: Be must not be negative";
  { contract; committed_credit = contract.bc_bits;
    excess_credit = contract.be_bits; last = 0.0; n_committed = 0;
    n_excess = 0; n_dropped = 0 }

type verdict = Committed | Excess | Dropped

(* Continuous refill at CIR: committed credit first, spill to excess —
   equivalent to the classic per-interval accounting in the limit. *)
let refill t ~now =
  if now > t.last then begin
    let earned = (now -. t.last) *. t.contract.cir_bps in
    let to_committed =
      Float.min earned (t.contract.bc_bits -. t.committed_credit)
    in
    t.committed_credit <- t.committed_credit +. to_committed;
    t.excess_credit <-
      Float.min t.contract.be_bits
        (t.excess_credit +. (earned -. to_committed));
    t.last <- now
  end

let police t ~now (frame : Frame.t) =
  refill t ~now;
  let bits = float_of_int (Frame.wire_bytes frame) *. 8.0 in
  if t.committed_credit >= bits then begin
    t.committed_credit <- t.committed_credit -. bits;
    t.n_committed <- t.n_committed + 1;
    Committed
  end
  else if t.excess_credit >= bits then begin
    t.excess_credit <- t.excess_credit -. bits;
    frame.Frame.de <- true;
    t.n_excess <- t.n_excess + 1;
    Excess
  end
  else begin
    t.n_dropped <- t.n_dropped + 1;
    Dropped
  end

let stats t = (t.n_committed, t.n_excess, t.n_dropped)
