(* E18 — audited long-horizon soak: the streaming invariant auditor
   riding a diurnal-envelope run, plain and under a seeded topology
   chaos storm, sequential and sharded (ARCHITECTURE.md "Runtime
   invariants").

   Three claims, each checked loudly:

   1. The auditor is sound here: >= 10^6 executed events, seven
      invariants re-proven every simulated second, zero violations —
      with and without the storm, at every shard count.
   2. The auditor is invisible to the physics: traffic totals
      (delivered, dropped, per-class sums, SLO verdict) are identical
      audit-on vs audit-off, and across K = 1/2/4 shards under the
      same storm. Audit ticks are engine events, so executed-event
      counts legitimately differ; everything the packets did must not.
   3. The auditor is cheap: same-process rate ratio audited/unaudited,
      gated at >= 0.95x by check.sh. *)

open Mvpn_par
module T = Mvpn_telemetry
module Audit = Mvpn_resilience.Audit
module Chaos = Mvpn_resilience.Chaos
module Harness = Mvpn_resilience.Harness
module Scenario = Mvpn_core.Scenario
module Backbone = Mvpn_core.Backbone

let duration = 72.0
let chaos_seed = 7

let base_cfg k =
  { Runner.default_config with
    Runner.shards = k; pops = 16; vpns = 4; sites_per_vpn = 8;
    load = 0.9; duration; seed = 11; diurnal = Some 8 }

(* Topology-only storm (no uid-hash verdicts), drawn once from a
   throwaway build and closed over by every replica — the same plan is
   valid at any shard count. *)
let storm_plan =
  lazy
    (T.Control.with_disabled (fun () ->
         let c = base_cfg 1 in
         let sc =
           Scenario.build ~pops:c.Runner.pops ~vpns:c.Runner.vpns
             ~sites_per_vpn:c.Runner.sites_per_vpn ~seed:c.Runner.seed
             (Scenario.Mpls_deployment
                { policy = c.Runner.policy; use_te = c.Runner.use_te })
         in
         let nodes = Array.to_list (Backbone.pops (Scenario.backbone sc)) in
         Chaos.random_topology_plan ~events:24 ~nodes
           ~rng:(Mvpn_sim.Rng.create chaos_seed)
           ~links:(Scenario.core_links sc) ~duration ()))

(* Both regimes — audited and baseline — carry the soak driver's live
   per-replica SLO engine, so the rate ratio isolates the auditor
   itself. The span sampler attach_slo arms re-walks the trace ring
   per sampled delivery; the soak runs without it, on every row. *)
let prepare ~audit ~chaos sc =
  let frr =
    if chaos then
      Harness.frr
        (Harness.arm ~plan:(Lazy.force storm_plan) ~frr:true ~fallback:true
           ~seed:chaos_seed ~duration sc)
    else None
  in
  ignore
    (Scenario.attach_slo
       ~slo:(T.Slo.create ~events:(T.Event_log.create ()) ())
       sc);
  Mvpn_core.Network.set_span_sampler (Scenario.network sc) None;
  if audit then ignore (Audit.start ?frr ~until:(duration +. 5.0) sc)

let cfg ~k ~audit ~chaos =
  { (base_cfg k) with
    Runner.prepare_replica = Some (prepare ~audit ~chaos) }

type sample = {
  tag : string;
  outcome : Runner.outcome;
  wall : float;
  cpu : float;  (* this process's CPU seconds — noise-resistant *)
  ticks : int;  (* audit ticks, summed over replicas *)
  bad : int;  (* audit violations, summed over replicas *)
}

(* What the packets did — excludes executed/scheduled events, which the
   audit ticks legitimately inflate. *)
let traffic (o : Runner.outcome) =
  ( o.Runner.delivered, o.Runner.dropped, o.Runner.classes,
    T.Slo.in_budget o.Runner.slo, T.Slo.violation_count o.Runner.slo )

let timed tag c run =
  let t0 = T.Registry.counter_value "audit.ticks" in
  let v0 = T.Registry.counter_value "audit.violations" in
  let w0 = Unix.gettimeofday () in
  let c0 = Sys.time () in
  let outcome = run c in
  let cpu = Sys.time () -. c0 in
  let wall = Unix.gettimeofday () -. w0 in
  { tag; outcome; wall; cpu;
    ticks = T.Registry.counter_value "audit.ticks" - t0;
    bad = T.Registry.counter_value "audit.violations" - v0 }

(* Best of two, interleaved A B A B by the caller: the runs are
   deterministic, so the smaller CPU time is the same work minus GC
   drift from the process's heap history — the 0.95x gate should
   judge the auditor, not the machine's mood. (The sequential runs the
   gate races are single-domain, so CPU seconds, unlike wall seconds,
   are also immune to the scheduler preempting a shared box.) *)
let best a b =
  if b.cpu < a.cpu then { b with bad = a.bad + b.bad }
  else { a with bad = a.bad + b.bad }

let rate s = float_of_int s.outcome.Runner.delivered /. Float.max 1e-9 s.wall

let check_traffic ~baseline s =
  if traffic s.outcome <> traffic baseline.outcome then begin
    Printf.eprintf
      "E18: TRAFFIC MISMATCH %s vs %s\n\
      \  %s: delivered=%d dropped=%d\n\
      \  %s: delivered=%d dropped=%d\n"
      s.tag baseline.tag baseline.tag baseline.outcome.Runner.delivered
      baseline.outcome.Runner.dropped s.tag s.outcome.Runner.delivered
      s.outcome.Runner.dropped;
    failwith "E18: audited run diverged from its baseline"
  end

let check_clean s =
  if s.bad <> 0 then
    failwith
      (Printf.sprintf "E18: %s reported %d invariant violations" s.tag s.bad)

let run () =
  let c = base_cfg 1 in
  Tables.heading
    (Printf.sprintf
       "E18: audited soak (%d POPs, %d VPNs x %d sites, %.0fs diurnal, \
        seed %d, storm seed %d)"
       c.Runner.pops c.Runner.vpns c.Runner.sites_per_vpn duration
       c.Runner.seed chaos_seed);
  let widths = [11; 7; 10; 9; 9; 7; 6; 9; 8] in
  Tables.row widths
    [ "run"; "shards"; "delivered"; "dropped"; "events"; "ticks";
      "viol"; "wall"; "pps" ];
  Tables.rule widths;
  let report s =
    Tables.row widths
      [ s.tag; string_of_int s.outcome.Runner.shards;
        string_of_int s.outcome.Runner.delivered;
        string_of_int s.outcome.Runner.dropped;
        string_of_int s.outcome.Runner.events;
        string_of_int s.ticks; string_of_int s.bad;
        Printf.sprintf "%.2f s" s.wall;
        Printf.sprintf "%.0f" (rate s) ]
  in
  (* Unaudited baseline, then the identical run audited, back to back
     in one process so the rate ratio is a race, not a drift. *)
  let base_cfg' = cfg ~k:1 ~audit:false ~chaos:false in
  let audit_cfg = cfg ~k:1 ~audit:true ~chaos:false in
  let base1 = timed "seq" base_cfg' Runner.run_sequential in
  let audited1 = timed "seq-audit" audit_cfg Runner.run_sequential in
  let base = best base1 (timed "seq" base_cfg' Runner.run_sequential) in
  let audited =
    best audited1 (timed "seq-audit" audit_cfg Runner.run_sequential)
  in
  report base;
  if base.outcome.Runner.events < 1_000_000 then
    failwith
      (Printf.sprintf "E18: soak too small: %d events < 1e6"
         base.outcome.Runner.events);
  check_clean audited;
  check_traffic ~baseline:base audited;
  report audited;
  (* The same audited soak under the storm: new physics (faults drop
     and reroute traffic), same zero-violation requirement — the books
     must balance through flaps, outages and session drops. *)
  let chaos =
    timed "seq-chaos" (cfg ~k:1 ~audit:true ~chaos:true)
      Runner.run_sequential
  in
  check_clean chaos;
  report chaos;
  (* Sharded replicas of the audited storm: every replica audits its
     own books (cross-shard packets enter them as exports/imports) and
     the merged traffic must match the sequential storm exactly. *)
  List.iter
    (fun k ->
       let s =
         timed (Printf.sprintf "K=%d-chaos" k) (cfg ~k ~audit:true ~chaos:true)
           Runner.run_parallel
       in
       check_clean s;
       check_traffic ~baseline:chaos s;
       report s)
    [ 2; 4 ];
  T.Gauge.set (T.Registry.gauge "e18.events")
    (float_of_int base.outcome.Runner.events);
  T.Gauge.set (T.Registry.gauge "e18.rate.base_pps") (rate base);
  T.Gauge.set (T.Registry.gauge "e18.rate.audit_pps") (rate audited);
  T.Gauge.set (T.Registry.gauge "e18.rate.chaos_pps") (rate chaos);
  T.Gauge.set (T.Registry.gauge "e18.overhead.audit")
    (Float.max 1e-9 base.cpu /. Float.max 1e-9 audited.cpu);
  T.Gauge.set (T.Registry.gauge "e18.audit.ticks") (float_of_int audited.ticks);
  T.Gauge.set (T.Registry.gauge "e18.audit.violations")
    (float_of_int (audited.bad + chaos.bad));
  Tables.note
    "\nThe auditor re-proves seven invariants every simulated second —\n\
     packet conservation against the authoritative drop table, pool\n\
     leak freedom, TTL/loop bounds from the hop-trace ring, FRR\n\
     protection-superset stability, SLO error-budget monotonicity,\n\
     queue-depth sanity and bounded live-heap growth — while the run\n\
     is still going. Every audited row above finished with zero\n\
     violations, over a million executed events, through a seeded\n\
     storm of link flaps, node outages and session drops, at K = 1/2/4\n\
     shards. Traffic totals are identical audit-on vs audit-off and\n\
     across shard counts (the bench aborts on any divergence); only\n\
     executed-event counts differ, by exactly the audit ticks. The\n\
     pps column is the same-process rate race check.sh gates at >=\n\
     0.95x: the checks read plain fields and bounded rings, so\n\
     auditing costs a few percent, not a rerun."
