lib/qos/meter.mli:
