bench/e7_traffic_engineering.ml: Array Backbone Float List Mvpn_core Mvpn_mpls Mvpn_net Mvpn_qos Mvpn_sim Tables
