lib/net/radix.mli: Ipv4 Prefix
