lib/core/traffic.mli: Mvpn_net Mvpn_qos Mvpn_sim Network
