(* mvpn — command-line front end.

     mvpn topo     [--pops N]                  describe a backbone
     mvpn deploy   [--pops N] [--vpns V] [--sites K] [--overlay]
                                               provision and print state
     mvpn run      [--policy P] [--load L] [--duration D] ...
                                               run the mixed workload and
                                               print per-class SLA reports
     mvpn stats    [--json] ...                run the workload with
                                               telemetry on and dump the
                                               metric registry
     mvpn slo      [--json] [--fail-at T] ...  run under per-(vpn, band)
                                               SLOs; report conformance,
                                               budgets and events; exit
                                               non-zero when out of budget
     mvpn timeline [--json|--csv] [--interval S] [--shards K]
                                               run with the timeline sampler
                                               armed and export the recorded
                                               time series
     mvpn soak     [--hours H] [--chaos SEED] [--shards K] [--json]
                                               long-horizon diurnal soak with
                                               the invariant auditor armed;
                                               exit 1 on any violation
     mvpn fail     [--pops N] ...              fail a core link mid-run and
                                               report reconvergence
     mvpn provision [--customers N] [--sites-dist D] [--churn K] [--json]
                                               compile a customer portfolio
                                               to VPN state; churn it
                                               incrementally against the
                                               from-scratch oracle *)

open Cmdliner
open Mvpn_core
module Engine = Mvpn_sim.Engine
module Topology = Mvpn_sim.Topology
module Sla = Mvpn_qos.Sla
module Telemetry = Mvpn_telemetry

(* --- shared arguments -------------------------------------------------- *)

let pops_arg =
  Arg.(value & opt int 12 & info ["pops"] ~docv:"N" ~doc:"Number of POPs.")

let vpns_arg =
  Arg.(value & opt int 2 & info ["vpns"] ~docv:"V" ~doc:"Number of VPNs.")

let sites_arg =
  Arg.(value & opt int 4 & info ["sites"] ~docv:"K"
         ~doc:"Sites per VPN.")

let policy_conv =
  Arg.enum
    [ ("best-effort", Qos_mapping.Best_effort);
      ("diffserv", Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched);
      ("diffserv-strict", Qos_mapping.Diffserv Qos_mapping.strict_sched) ]

let policy_arg =
  Arg.(value
       & opt policy_conv
           (Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched)
       & info ["policy"] ~docv:"POLICY"
         ~doc:"Forwarding policy: best-effort, diffserv, diffserv-strict.")

let load_arg =
  Arg.(value & opt float 0.9 & info ["load"] ~docv:"L"
         ~doc:"Offered load as a fraction of the access rate.")

let duration_arg =
  Arg.(value & opt float 30.0 & info ["duration"] ~docv:"SEC"
         ~doc:"Workload duration in simulated seconds.")

let overlay_arg =
  Arg.(value & flag & info ["overlay"]
         ~doc:"Deploy the IPSec overlay baseline instead of the MPLS VPN.")

let te_arg =
  Arg.(value & flag & info ["te"] ~doc:"Signal RSVP-TE tunnels between PEs.")

let seed_arg =
  Arg.(value & opt int 11 & info ["seed"] ~docv:"SEED"
         ~doc:"Deterministic simulation seed.")

(* --- topo --------------------------------------------------------------- *)

let topo_cmd =
  let run pops =
    let bb = Backbone.build ~pops () in
    let topo = Backbone.topology bb in
    Printf.printf "backbone: %d POPs, %d unidirectional links\n" pops
      (Topology.link_count topo);
    List.iter
      (fun (l : Topology.link) ->
         if l.Topology.src < l.Topology.dst then
           Printf.printf "  %-4s <-> %-4s  %5.1f Mb/s  %4.1f ms\n"
             (Topology.node_name topo l.Topology.src)
             (Topology.node_name topo l.Topology.dst)
             (l.Topology.bandwidth /. 1e6)
             (l.Topology.delay *. 1e3))
      (Topology.links topo);
    Array.iteri
      (fun pop node ->
         Printf.printf "  pop %2d = node %2d, loopback %s\n" pop node
           (Mvpn_net.Prefix.to_string (Backbone.loopback bb ~pop)))
      (Backbone.pops bb)
  in
  Cmd.v (Cmd.info "topo" ~doc:"Describe the reference backbone topology.")
    Term.(const run $ pops_arg)

(* --- deploy ------------------------------------------------------------- *)

let deploy_cmd =
  let run pops vpns sites_per_vpn overlay seed =
    let sc =
      Scenario.build ~pops ~vpns ~sites_per_vpn ~seed
        (if overlay then
           Scenario.Overlay_deployment
             { policy = Qos_mapping.Best_effort;
               cipher = Mvpn_ipsec.Crypto.Des; copy_tos = true }
         else
           Scenario.Mpls_deployment
             { policy = Qos_mapping.Best_effort; use_te = false })
    in
    (match Scenario.mpls sc with
     | Some m ->
       let x = Mpls_vpn.metrics m in
       Printf.printf
         "MPLS VPN deployed: %d sites in %d VPNs\n\
          \  VRFs               %d\n\
          \  VPNv4 routes       %d\n\
          \  BGP sessions       %d\n\
          \  LFIB entries       %d\n\
          \  labels allocated   %d\n\
          \  control messages   %d\n\
          \  operator touches   %d\n"
         x.Mpls_vpn.sites x.Mpls_vpn.vpns x.Mpls_vpn.vrf_count
         x.Mpls_vpn.vpnv4_routes x.Mpls_vpn.bgp_sessions
         x.Mpls_vpn.lfib_entries x.Mpls_vpn.labels_allocated
         x.Mpls_vpn.control_messages x.Mpls_vpn.provisioning_touches
     | None -> ());
    match Scenario.overlay sc with
    | Some o ->
      let x = Overlay.metrics o in
      Printf.printf
        "Overlay VPN deployed: %d sites in %d VPNs\n\
         \  virtual circuits   %d\n\
         \  directional tunnels %d\n\
         \  IKE messages       %d\n\
         \  operator touches   %d\n"
        x.Overlay.sites x.Overlay.vpns x.Overlay.vcs x.Overlay.tunnels
        x.Overlay.control_messages x.Overlay.provisioning_touches
    | None -> ()
  in
  Cmd.v
    (Cmd.info "deploy"
       ~doc:"Provision a VPN service and print its control-plane state.")
    Term.(const run $ pops_arg $ vpns_arg $ sites_arg $ overlay_arg
          $ seed_arg)

(* --- run ---------------------------------------------------------------- *)

let print_reports sc =
  Printf.printf "%-15s %6s %6s %10s %10s %9s %8s  %s\n" "class" "sent"
    "recv" "mean ms" "p99 ms" "jit ms" "loss" "SLA";
  List.iter
    (fun (cls, (r : Sla.report)) ->
       let spec =
         match
           List.find_opt (fun (n, _, _) -> n = cls) Scenario.service_classes
         with
         | Some (_, _, s) -> s
         | None -> Sla.best_effort_spec
       in
       Printf.printf "%-15s %6d %6d %10.2f %10.2f %9.2f %7.2f%%  %s\n" cls
         r.Sla.sent r.Sla.received
         (r.Sla.mean_delay *. 1e3)
         (r.Sla.p99_delay *. 1e3)
         (r.Sla.jitter *. 1e3)
         (r.Sla.loss *. 100.0)
         (if Sla.complies spec r then "ok"
          else String.concat "; " (Sla.check spec r)))
    (Scenario.class_reports sc)

let run_cmd =
  let run pops vpns sites_per_vpn policy load duration use_te seed =
    let sc =
      Scenario.build ~pops ~vpns ~sites_per_vpn ~seed
        (Scenario.Mpls_deployment { policy; use_te })
    in
    (* Wrap every CE sink with usage accounting. *)
    let acct = Accounting.create () in
    let registry = Scenario.registry sc in
    Array.iter
      (fun (s : Site.t) ->
         Network.set_sink (Scenario.network sc) s.Site.ce_node
           (Accounting.sink acct (Traffic.sink registry)))
      (Scenario.sites sc);
    Scenario.add_mixed_workload ~load sc ~pairs:(Scenario.default_pairs sc)
      ~duration;
    Scenario.run sc ~duration:(duration +. 5.0);
    print_reports sc;
    Printf.printf "\nmax core utilization: %.1f%%   core loss: %.2f%%\n"
      (Scenario.max_core_utilization sc *. 100.0)
      (Scenario.core_loss_fraction sc *. 100.0);
    Printf.printf "\nUsage-based billing (default tariff):\n";
    List.iter
      (fun vpn -> Accounting.pp_invoice Format.std_formatter acct ~vpn)
      (List.init vpns (fun v -> v + 1));
    Format.pp_print_flush Format.std_formatter ()
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run the mixed voice/transactional/bulk workload and report \
             per-class SLAs.")
    Term.(const run $ pops_arg $ vpns_arg $ sites_arg $ policy_arg
          $ load_arg $ duration_arg $ te_arg $ seed_arg)

(* --- stats -------------------------------------------------------------- *)

let stats_cmd =
  let run pops vpns sites_per_vpn policy load duration use_te seed json
      trace_events event_entries =
    Telemetry.Registry.reset ();
    Telemetry.Control.enable ();
    let sc =
      Scenario.build ~pops ~vpns ~sites_per_vpn ~seed
        (Scenario.Mpls_deployment { policy; use_te })
    in
    Scenario.add_mixed_workload ~load sc ~pairs:(Scenario.default_pairs sc)
      ~duration;
    Scenario.run sc ~duration:(duration +. 5.0);
    Telemetry.Control.disable ();
    if json then
      print_string
        (Telemetry.Registry.to_json ~trace_events ~event_entries ())
    else begin
      print_reports sc;
      Printf.printf "\n";
      Telemetry.Registry.pp ~trace_events Format.std_formatter ();
      Format.pp_print_flush Format.std_formatter ()
    end
  in
  let json_arg =
    Arg.(value & flag & info ["json"]
           ~doc:"Emit the telemetry registry as one JSON object instead \
                 of text.")
  in
  let trace_arg =
    Arg.(value & opt int 16 & info ["trace"; "trace-events"] ~docv:"N"
           ~doc:"Hop-trace tail length to include in the dump.")
  in
  let events_arg =
    Arg.(value & opt int 256 & info ["events"] ~docv:"N"
           ~doc:"Event-log tail length to include in the JSON dump.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run the mixed workload with telemetry enabled and dump every \
             counter, gauge, histogram and the hop-trace tail.")
    Term.(const run $ pops_arg $ vpns_arg $ sites_arg $ policy_arg
          $ load_arg $ duration_arg $ te_arg $ seed_arg $ json_arg
          $ trace_arg $ events_arg)

(* --- slo ---------------------------------------------------------------- *)

let slo_cmd =
  let run pops vpns sites_per_vpn policy load duration use_te seed json
      fail_at repair_at chaos_seed =
    Telemetry.Registry.reset ();
    Telemetry.Control.enable ();
    let sc =
      Scenario.build ~pops ~vpns ~sites_per_vpn ~seed
        (Scenario.Mpls_deployment { policy; use_te })
    in
    (* --chaos SEED: arm the full resilience stack (IP fallback, FRR
       bypasses, backoff recovery) plus the seeded fault plan, and
       judge conformance under that storm. *)
    (match chaos_seed with
     | Some cseed ->
       ignore
         (Mvpn_resilience.Harness.arm ~frr:true ~fallback:true ~seed:cseed
            ~duration sc)
     | None -> ());
    let slo = Scenario.attach_slo sc in
    let net = Scenario.network sc in
    let engine = Scenario.engine sc in
    Scenario.add_mixed_workload ~load sc ~pairs:(Scenario.default_pairs sc)
      ~duration;
    (* Optional mid-run core failure (and repair + reconvergence), to
       watch the conformance engine catch the churn. *)
    let pops_arr = Backbone.pops (Scenario.backbone sc) in
    let set_core up =
      Topology.set_duplex_state (Network.topology net) pops_arr.(0)
        pops_arr.(1) up
    in
    (match fail_at with
     | Some t when t > 0.0 ->
       Engine.schedule engine ~delay:t (fun () -> set_core false)
     | _ -> ());
    (match fail_at, repair_at with
     | Some _, Some t when t > 0.0 ->
       Engine.schedule engine ~delay:t (fun () ->
           set_core true;
           match Scenario.mpls sc with
           | Some m -> ignore (Mpls_vpn.reconverge m)
           | None -> ())
     | _ -> ());
    Scenario.run sc ~duration:(duration +. 5.0);
    Telemetry.Control.disable ();
    let ok = Telemetry.Slo.in_budget slo in
    let events = Telemetry.Registry.events () in
    if json then begin
      let spans =
        match Network.span_sampler net with
        | Some s -> Telemetry.Span.sampler_to_json s
        | None -> "[]"
      in
      Printf.printf
        "{\"schema\":%d,\"now\":%.9g,\"in_budget\":%b,\"objectives\":%s,\
         \"events\":%s,\"spans\":%s}"
        Telemetry.Registry.schema_version
        (Engine.now engine) ok (Telemetry.Slo.to_json slo)
        (Telemetry.Event_log.json_entries events)
        spans
    end
    else begin
      Printf.printf "SLA conformance after %.1fs (per vpn/band):\n"
        (Engine.now engine);
      Telemetry.Slo.pp Format.std_formatter slo;
      Format.pp_print_flush Format.std_formatter ();
      Printf.printf "\nevents (%d recorded):\n"
        (Telemetry.Event_log.recorded events);
      List.iter
        (fun e ->
           Format.printf "  %a@." Telemetry.Event_log.pp_entry e)
        (Telemetry.Event_log.entries events);
      Format.pp_print_flush Format.std_formatter ();
      Printf.printf "\noverall: %s\n"
        (if ok then "all objectives in budget"
         else "OUT OF BUDGET")
    end;
    if not ok then exit 1
  in
  let json_arg =
    Arg.(value & flag & info ["json"]
           ~doc:"Emit conformance, events and sampled spans as one JSON \
                 object.")
  in
  let fail_arg =
    Arg.(value & opt (some float) None & info ["fail-at"] ~docv:"SEC"
           ~doc:"Fail the pop0<->pop1 core link at this time.")
  in
  let repair_arg =
    Arg.(value & opt (some float) None & info ["repair-at"] ~docv:"SEC"
           ~doc:"Repair the failed link (and reconverge) at this time.")
  in
  let chaos_arg =
    Arg.(value & opt (some int) None & info ["chaos"] ~docv:"SEED"
           ~doc:"Run under a seeded chaos fault plan with fast reroute, IP \
                 fallback and backoff recovery armed; judge the SLOs under \
                 that storm.")
  in
  Cmd.v
    (Cmd.info "slo"
       ~doc:"Run the mixed workload under per-(vpn, band) SLOs and report \
             conformance, error budgets, burn rates and the event log. \
             Exit status is the contract: 0 when every objective is in \
             budget, 1 when any objective is out of budget (124 on \
             command-line errors, per cmdliner).")
    Term.(const run $ pops_arg $ vpns_arg $ sites_arg $ policy_arg
          $ load_arg $ duration_arg $ te_arg $ seed_arg $ json_arg
          $ fail_arg $ repair_arg $ chaos_arg)

(* --- chaos -------------------------------------------------------------- *)

let chaos_cmd =
  let run pops vpns sites_per_vpn load duration seed events json no_frr
      no_fallback =
    Telemetry.Registry.reset ();
    Telemetry.Control.enable ();
    let h =
      Mvpn_resilience.Harness.build ~pops ~vpns ~sites_per_vpn ~events ~load
        ~frr:(not no_frr) ~fallback:(not no_fallback) ~seed ~duration ()
    in
    Mvpn_resilience.Harness.run h;
    Telemetry.Control.disable ();
    if json then print_string (Mvpn_resilience.Harness.summary_json h)
    else begin
      Mvpn_resilience.Harness.pp_summary Format.std_formatter h;
      Format.pp_print_flush Format.std_formatter ()
    end
  in
  let events_arg =
    Arg.(value & opt int 12 & info ["events"] ~docv:"N"
           ~doc:"Number of faults in the seeded plan.")
  in
  let json_arg =
    Arg.(value & flag & info ["json"]
           ~doc:"Emit the replayable plan and every terminal fate as one \
                 JSON object. Byte-identical for equal seeds.")
  in
  let no_frr_arg =
    Arg.(value & flag & info ["no-frr"]
           ~doc:"Disarm MPLS fast reroute (baseline regime).")
  in
  let no_fallback_arg =
    Arg.(value & flag & info ["no-fallback"]
           ~doc:"Disarm best-effort IP fallback at the ingress PE.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run the mixed workload under a seeded fault storm — link \
             flaps, node outages, loss and corruption bursts, \
             control-plane session drops — with fast reroute, IP fallback \
             and backoff recovery armed, and account every packet's fate.")
    Term.(const run $ pops_arg $ vpns_arg $ sites_arg $ load_arg
          $ duration_arg $ seed_arg $ events_arg $ json_arg $ no_frr_arg
          $ no_fallback_arg)

(* --- par ---------------------------------------------------------------- *)

let par_cmd =
  let run pops vpns sites_per_vpn policy load duration use_te seed shards
      core_delay seq json =
    Telemetry.Registry.reset ();
    Telemetry.Control.enable ();
    let cfg =
      { Mvpn_par.Runner.shards; pops; vpns; sites_per_vpn; policy; use_te;
        load; duration; seed; core_delay;
        backend = Mvpn_sim.Engine.Calendar;
        sample_interval = None; profile = false; prepare_replica = None;
        diurnal = None }
    in
    let o =
      if seq then Mvpn_par.Runner.run_sequential cfg
      else Mvpn_par.Runner.run_parallel cfg
    in
    Telemetry.Control.disable ();
    let open Mvpn_par.Runner in
    if json then begin
      let b = Buffer.create 8192 in
      Printf.bprintf b
        "{\"schema\":%d,\"shards\":%d,\"sizes\":[%s],\"cut_links\":%d,\
         \"lookahead\":%b,"
        Telemetry.Registry.schema_version o.shards
        (String.concat ","
           (Array.to_list (Array.map string_of_int o.sizes)))
        o.cut_links o.lookahead;
      Printf.bprintf b
        "\"delivered\":%d,\"dropped\":%d,\"events\":%d,\"scheduled\":%d,\
         \"exchanged\":%d,\"leftover\":%d,\"overflow\":%d,"
        o.delivered o.dropped o.events o.scheduled o.exchanged o.leftover
        o.overflow;
      Printf.bprintf b "\"classes\":{%s},"
        (String.concat ","
           (List.map
              (fun (l, s, r) ->
                 Printf.sprintf "\"%s\":{\"sent\":%d,\"received\":%d}" l s r)
              o.classes));
      Printf.bprintf b
        "\"slo\":{\"in_budget\":%b,\"violations\":%d,\"objectives\":%s},"
        (Telemetry.Slo.in_budget o.slo)
        (Telemetry.Slo.violation_count o.slo)
        (Telemetry.Slo.to_json o.slo);
      Printf.bprintf b "\"registry\":%s}" o.registry_json;
      print_string (Buffer.contents b)
    end
    else begin
      Printf.printf
        "partitioned run: %d shard(s), %d cut link(s), %s sync\n"
        o.shards o.cut_links
        (if o.lookahead then "lookahead-window" else "epoch-barrier");
      Printf.printf "  nodes per shard   %s\n"
        (String.concat "/"
           (Array.to_list (Array.map string_of_int o.sizes)));
      Printf.printf "  delivered         %d\n  dropped           %d\n"
        o.delivered o.dropped;
      Printf.printf "  events run        %d (scheduled %d)\n" o.events
        o.scheduled;
      Printf.printf
        "  cross-shard       %d packet(s), %d past horizon, %d overflow\n"
        o.exchanged o.leftover o.overflow;
      Printf.printf "  %-15s %8s %8s\n" "class" "sent" "recv";
      List.iter
        (fun (l, s, r) -> Printf.printf "  %-15s %8d %8d\n" l s r)
        o.classes;
      Printf.printf "\nSLA conformance (merged fate replay):\n";
      Telemetry.Slo.pp Format.std_formatter o.slo;
      Format.pp_print_flush Format.std_formatter ();
      Printf.printf "overall: %s\n"
        (if Telemetry.Slo.in_budget o.slo then "all objectives in budget"
         else "OUT OF BUDGET")
    end
  in
  let shards_arg =
    Arg.(value & opt int 4 & info ["shards"] ~docv:"K"
           ~doc:"Number of parallel shards (domains). Clamped to the \
                 number of POP regions; 1 degenerates to a sequential \
                 run through the same machinery.")
  in
  let core_delay_arg =
    Arg.(value & opt (some float) None & info ["core-delay"] ~docv:"SEC"
           ~doc:"Override the POP-POP propagation delay (the \
                 synchronization lookahead). 0 forces the epoch-barrier \
                 fallback.")
  in
  let seq_arg =
    Arg.(value & flag & info ["seq"]
           ~doc:"Run the identical build/workload sequentially in one \
                 domain (baseline for totals comparison).")
  in
  let json_arg =
    Arg.(value & flag & info ["json"]
           ~doc:"Emit the outcome, per-class sums, SLO conformance and \
                 the merged telemetry registry as one JSON object. \
                 Byte-identical for equal seeds at every shard count.")
  in
  Cmd.v
    (Cmd.info "par"
       ~doc:"Run the mixed workload on the multicore partitioned runner: \
             the backbone is cut into shards (one OCaml domain each, \
             conservatively synchronized over the cut links) and the \
             per-shard telemetry merges into one snapshot whose totals \
             are identical to the sequential run's, for every shard \
             count.")
    Term.(const run $ pops_arg $ vpns_arg $ sites_arg $ policy_arg
          $ load_arg $ duration_arg $ te_arg $ seed_arg $ shards_arg
          $ core_delay_arg $ seq_arg $ json_arg)

(* --- timeline ----------------------------------------------------------- *)

let timeline_cmd =
  let jf v =
    if Float.is_finite v then Printf.sprintf "%.9g" v else "0"
  in
  let run pops vpns sites_per_vpn policy load duration use_te seed shards
      interval json csv =
    Telemetry.Registry.reset ();
    Telemetry.Control.enable ();
    let cfg =
      { Mvpn_par.Runner.default_config with
        shards = (if shards < 1 then 1 else shards);
        pops; vpns; sites_per_vpn; policy; use_te; load; duration; seed;
        sample_interval = Some interval }
    in
    let o =
      if shards <= 1 then Mvpn_par.Runner.run_sequential cfg
      else Mvpn_par.Runner.run_parallel cfg
    in
    Telemetry.Control.disable ();
    (* Sim-scope series only. Host-scope rings (GC churn) are real but
       machine-dependent, so they stay out of the export — which is what
       keeps the bytes identical for every shard count. *)
    let sim_series =
      List.filter_map
        (fun name ->
           match Telemetry.Registry.find_series name with
           | Some s when Telemetry.Timeseries.scope s = Telemetry.Timeseries.Sim
             ->
             Some (name, Telemetry.Timeseries.level s,
                   Telemetry.Timeseries.samples s)
           | _ -> None)
        (Telemetry.Registry.names ())
    in
    (* Burn-rate series derived from the merged good/bad tallies: the
       ratio itself is not summable across shards, so it is computed
       here, after the merge, from sums that are. *)
    let burn_of vpn band good bad =
      let target = Sampler.slo_target ~band in
      let budget = 1.0 -. target in
      let n = min (Array.length good) (Array.length bad) in
      let out = Array.make n (0.0, 0.0) in
      for i = 0 to n - 1 do
        let tg, g = good.(i) and _, b = bad.(i) in
        let total = g +. b in
        let burn =
          if total > 0.0 && budget > 0.0 then b /. total /. budget else 0.0
        in
        out.(i) <- (tg, burn)
      done;
      (Printf.sprintf "ts.slo.v%d.b%d.burn" vpn band, 0, out)
    in
    let derived =
      List.filter_map
        (fun (name, _, good) ->
           match Scanf.sscanf_opt name "ts.slo.v%d.b%d.good"
                   (fun v b -> (v, b)) with
           | Some (vpn, band) ->
             (match Telemetry.Registry.find_series
                      (Printf.sprintf "ts.slo.v%d.b%d.bad" vpn band) with
              | Some s ->
                Some (burn_of vpn band good (Telemetry.Timeseries.samples s))
              | None -> None)
           | None -> None)
        sim_series
    in
    let all =
      List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
        (sim_series @ derived)
    in
    if json then begin
      let b = Buffer.create 65536 in
      Printf.bprintf b "{\"schema\":%d,\"interval\":%s,\"horizon\":%s,\
                        \"seed\":%d,\"series\":{"
        Telemetry.Registry.schema_version (jf interval) (jf o.Mvpn_par.Runner.horizon)
        seed;
      List.iteri
        (fun i (name, level, samples) ->
           if i > 0 then Buffer.add_char b ',';
           Printf.bprintf b "\"%s\":{\"level\":%d,\"samples\":[" name level;
           Array.iteri
             (fun j (t, v) ->
                if j > 0 then Buffer.add_char b ',';
                Printf.bprintf b "[%s,%s]" (jf t) (jf v))
             samples;
           Buffer.add_string b "]}")
        all;
      Buffer.add_string b "}}";
      print_string (Buffer.contents b)
    end
    else if csv then begin
      print_string "time,series,value\n";
      List.iter
        (fun (name, _, samples) ->
           Array.iter
             (fun (t, v) -> Printf.printf "%s,%s,%s\n" (jf t) name (jf v))
             samples)
        all
    end
    else begin
      Printf.printf
        "timeline: %d series, interval %.3gs, horizon %.3gs \
         (delivered %d, dropped %d)\n\n"
        (List.length all) interval o.Mvpn_par.Runner.horizon
        o.Mvpn_par.Runner.delivered o.Mvpn_par.Runner.dropped;
      Printf.printf "  %-26s %6s %5s %12s %12s %12s\n"
        "series" "n" "lvl" "min" "mean" "max";
      List.iter
        (fun (name, level, samples) ->
           let n = Array.length samples in
           if n = 0 then
             Printf.printf "  %-26s %6d %5d %12s %12s %12s\n"
               name 0 level "-" "-" "-"
           else begin
             let mn = ref infinity and mx = ref neg_infinity
             and sum = ref 0.0 in
             Array.iter
               (fun (_, v) ->
                  if v < !mn then mn := v;
                  if v > !mx then mx := v;
                  sum := !sum +. v)
               samples;
             Printf.printf "  %-26s %6d %5d %12.4g %12.4g %12.4g\n"
               name n level !mn (!sum /. float_of_int n) !mx
           end)
        all
    end
  in
  let shards_arg =
    Arg.(value & opt int 1 & info ["shards"] ~docv:"K"
           ~doc:"Shard (domain) count; 1 runs the sequential replica. The \
                 exported series are byte-identical at every K.")
  in
  let interval_arg =
    Arg.(value & opt float Sampler.default_interval
         & info ["interval"] ~docv:"SEC"
           ~doc:"Sampling interval in simulated seconds.")
  in
  let json_arg =
    Arg.(value & flag & info ["json"]
           ~doc:"Emit every sim-scope time series as one JSON object. \
                 Byte-identical for equal seeds at every shard count.")
  in
  let csv_arg =
    Arg.(value & flag & info ["csv"]
           ~doc:"Emit the series in long form: time,series,value.")
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"Run the mixed workload with the timeline sampler armed and \
             export the recorded time series — per-link utilization, \
             per-band queue depth and drops, per-(vpn, band) SLO burn \
             material — as a table, JSON or CSV. Series ride fixed-size \
             decimating rings, so memory stays bounded at any horizon.")
    Term.(const run $ pops_arg $ vpns_arg $ sites_arg $ policy_arg
          $ load_arg $ duration_arg $ te_arg $ seed_arg $ shards_arg
          $ interval_arg $ json_arg $ csv_arg)

(* --- soak --------------------------------------------------------------- *)

(* Strictly positive finite float, rejected at parse time so misuse
   surfaces as cmdliner's usage-error exit (124), never as a crash or a
   silently degenerate run. *)
let pos_float_conv =
  let parse s =
    match float_of_string_opt s with
    | Some v when Float.is_finite v && v > 0.0 -> Ok v
    | Some _ -> Error (`Msg "must be a finite positive number")
    | None -> Error (`Msg (Printf.sprintf "invalid number %S" s))
  in
  Arg.conv ~docv:"NUM" (parse, Format.pp_print_float)

let soak_cmd =
  let jf v = if Float.is_finite v then Printf.sprintf "%.9g" v else "0" in
  let run pops vpns sites_per_vpn load seed shards hours chaos
      audit_interval snapshot_interval segments fail_fast json =
    Telemetry.Registry.reset ();
    let duration = hours *. 3600.0 in
    let horizon = duration +. 5.0 in
    let deployment =
      Scenario.Mpls_deployment
        { policy = Qos_mapping.Diffserv Qos_mapping.default_diffserv_sched;
          use_te = false }
    in
    (* The fault plan is drawn once, here, and closed over by every
       replica: topology-only faults (no uid-hash verdicts), so the
       same storm is valid at any shard count. A throwaway build
       supplies the node/link universe without touching telemetry. *)
    let chaos_plan =
      Option.map
        (fun cseed ->
           Telemetry.Control.with_disabled (fun () ->
               let sc =
                 Scenario.build ~pops ~vpns ~sites_per_vpn ~seed deployment
               in
               let nodes =
                 Array.to_list (Backbone.pops (Scenario.backbone sc))
               in
               Mvpn_resilience.Chaos.random_topology_plan ~nodes
                 ~rng:(Mvpn_sim.Rng.create cseed)
                 ~links:(Scenario.core_links sc) ~duration ()))
        chaos
    in
    (* Runs on every replica — sequential, or each shard — after the
       timeline sampler and before the workload, in this exact order,
       so event FIFO ranks match at every shard count. *)
    let prepare sc =
      let frr =
        match (chaos, chaos_plan) with
        | Some cseed, Some plan ->
          let h =
            Mvpn_resilience.Harness.arm ~plan ~frr:true ~fallback:true
              ~seed:cseed ~duration sc
          in
          Mvpn_resilience.Harness.frr h
        | _ -> None
      in
      (* Live per-replica conformance engine for the auditor's
         budget-monotonicity check; violation events stay in a private
         log. The reported SLO verdict still comes from the merged
         fate replay, as everywhere else. *)
      ignore
        (Scenario.attach_slo
           ~slo:(Telemetry.Slo.create
                   ~events:(Telemetry.Event_log.create ()) ())
           sc);
      (* The span sampler attach_slo arms re-walks the trace ring per
         sampled delivery — real money over an hours-long soak, and
         nothing here reads the spans. *)
      Mvpn_core.Network.set_span_sampler (Scenario.network sc) None;
      ignore
        (Mvpn_resilience.Audit.start ~interval:audit_interval
           ~until:horizon ~fail_fast ?frr sc)
    in
    Telemetry.Control.enable ();
    let cfg =
      { Mvpn_par.Runner.default_config with
        shards = (if shards < 1 then 1 else shards);
        pops; vpns; sites_per_vpn; load; duration; seed;
        sample_interval = Some snapshot_interval;
        prepare_replica = Some prepare;
        diurnal = Some segments }
    in
    let o =
      if shards <= 1 then Mvpn_par.Runner.run_sequential cfg
      else Mvpn_par.Runner.run_parallel cfg
    in
    Telemetry.Control.disable ();
    let replicas = max 1 o.Mvpn_par.Runner.shards in
    let audit_ticks =
      Telemetry.Registry.counter_value "audit.ticks" / replicas
    in
    let audit_violations =
      Telemetry.Registry.counter_value "audit.violations"
    in
    (* Streamed snapshot count: the longest sim-scope series the
       timeline sampler recorded (decimating rings bound it). *)
    let snapshots =
      List.fold_left
        (fun acc name ->
           match Telemetry.Registry.find_series name with
           | Some s
             when Telemetry.Timeseries.scope s = Telemetry.Timeseries.Sim ->
             max acc (Array.length (Telemetry.Timeseries.samples s))
           | _ -> acc)
        0
        (Telemetry.Registry.names ())
    in
    let open Mvpn_par.Runner in
    if json then begin
      (* Only shard-invariant material: equal seeds must give these
         exact bytes at every --shards K. *)
      let b = Buffer.create 8192 in
      Printf.bprintf b
        "{\"schema\":%d,\"hours\":%s,\"duration\":%s,\"seed\":%d,\
         \"load\":%s,\"segments\":%d,"
        Telemetry.Registry.schema_version (jf hours) (jf duration) seed
        (jf load) segments;
      (match (chaos, chaos_plan) with
       | Some cseed, Some plan ->
         Printf.bprintf b "\"chaos\":{\"seed\":%d,\"plan\":%s},"
           cseed (Mvpn_resilience.Chaos.plan_json plan)
       | _ -> Buffer.add_string b "\"chaos\":null,");
      Printf.bprintf b "\"delivered\":%d,\"dropped\":%d," o.delivered
        o.dropped;
      Printf.bprintf b "\"classes\":{%s},"
        (String.concat ","
           (List.map
              (fun (l, s, r) ->
                 Printf.sprintf "\"%s\":{\"sent\":%d,\"received\":%d}" l s
                   r)
              o.classes));
      Printf.bprintf b
        "\"slo\":{\"in_budget\":%b,\"violations\":%d},"
        (Telemetry.Slo.in_budget o.slo)
        (Telemetry.Slo.violation_count o.slo);
      Printf.bprintf b
        "\"audit\":{\"interval\":%s,\"ticks\":%d,\"violations\":%d},"
        (jf audit_interval) audit_ticks audit_violations;
      Printf.bprintf b "\"snapshots\":%d}" snapshots;
      print_string (Buffer.contents b)
    end
    else begin
      Printf.printf
        "soak: %.3g h simulated (%.6gs), seed %d, %d replica(s)\n" hours
        duration seed replicas;
      (match (chaos, chaos_plan) with
       | Some cseed, Some plan ->
         Printf.printf "  chaos seed %d: %d topology faults\n" cseed
           (List.length plan)
       | _ -> Printf.printf "  chaos: off\n");
      Printf.printf "  delivered         %d\n  dropped           %d\n"
        o.delivered o.dropped;
      Printf.printf "  audit ticks       %d (interval %.3gs)\n" audit_ticks
        audit_interval;
      Printf.printf "  audit violations  %d\n" audit_violations;
      List.iter
        (fun name ->
           let prefix = "audit.violation." in
           if String.length name > String.length prefix
           && String.sub name 0 (String.length prefix) = prefix then
             Printf.printf "    %-24s %d\n" name
               (Telemetry.Registry.counter_value name))
        (Telemetry.Registry.names ());
      Printf.printf "  snapshots         %d (interval %.3gs)\n" snapshots
        snapshot_interval;
      Printf.printf "\nSLA conformance (merged fate replay):\n";
      Telemetry.Slo.pp Format.std_formatter o.slo;
      Format.pp_print_flush Format.std_formatter ();
      Printf.printf "overall: %s\n"
        (if audit_violations = 0 then "all invariants held"
         else "INVARIANT VIOLATIONS")
    end;
    if audit_violations <> 0 then exit 1
  in
  let hours_arg =
    Arg.(value & opt pos_float_conv 0.1 & info ["hours"] ~docv:"H"
           ~doc:"Simulated soak length in hours (finite, positive).")
  in
  let chaos_arg =
    Arg.(value & opt (some int) None & info ["chaos"] ~docv:"SEED"
           ~doc:"Arm fast reroute, IP fallback, backoff recovery and a \
                 seeded topology-only fault storm (link flaps, node \
                 outages, session drops) for the whole soak.")
  in
  let shards_arg =
    Arg.(value & opt int 1 & info ["shards"] ~docv:"K"
           ~doc:"Shard (domain) count; 1 runs the sequential replica. \
                 The JSON envelope is byte-identical at every K.")
  in
  let audit_interval_arg =
    Arg.(value
         & opt pos_float_conv Mvpn_resilience.Audit.default_interval
         & info ["audit-interval"] ~docv:"SEC"
           ~doc:"Invariant audit interval in simulated seconds (finite, \
                 positive).")
  in
  let snapshot_interval_arg =
    Arg.(value & opt pos_float_conv Sampler.default_interval
         & info ["snapshot-interval"] ~docv:"SEC"
           ~doc:"Streaming telemetry snapshot interval in simulated \
                 seconds (finite, positive).")
  in
  let segments_arg =
    Arg.(value & opt int 8 & info ["segments"] ~docv:"N"
           ~doc:"Diurnal load-envelope segments over the soak.")
  in
  let fail_fast_arg =
    Arg.(value & flag & info ["fail-fast"]
           ~doc:"Abort on the first invariant violation instead of \
                 counting them to the end.")
  in
  let json_arg =
    Arg.(value & flag & info ["json"]
           ~doc:"Emit the soak envelope — inputs, chaos plan, traffic \
                 totals, SLO verdict, audit tallies — as one JSON \
                 object. Byte-identical for equal seeds at every shard \
                 count.")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Long-horizon soak: hours of simulated mixed traffic under a \
             diurnal load envelope, optionally under a seeded chaos \
             storm, with the streaming invariant auditor and timeline \
             sampler armed on every replica. Exit status is the \
             contract: 0 when every audited invariant held, 1 on any \
             violation (124 on command-line errors, per cmdliner).")
    Term.(const run $ pops_arg $ vpns_arg $ sites_arg $ load_arg
          $ seed_arg $ shards_arg $ hours_arg $ chaos_arg
          $ audit_interval_arg $ snapshot_interval_arg $ segments_arg
          $ fail_fast_arg $ json_arg)

(* --- fail --------------------------------------------------------------- *)

let fail_cmd =
  let run pops seed =
    let sc =
      Scenario.build ~pops ~vpns:1 ~sites_per_vpn:2 ~seed
        (Scenario.Mpls_deployment
           { policy = Qos_mapping.Best_effort; use_te = false })
    in
    let a = Scenario.site sc ~vpn:1 ~idx:0 in
    let b = Scenario.site sc ~vpn:1 ~idx:1 in
    let net = Scenario.network sc in
    let engine = Scenario.engine sc in
    let delivered = ref 0 in
    Network.set_sink net b.Site.ce_node (fun _ -> incr delivered);
    let send () =
      let p =
        Mvpn_net.Packet.make ~vpn:1 ~now:(Engine.now engine)
          (Mvpn_net.Flow.make (Site.host a 1) (Site.host b 1))
      in
      Network.inject net a.Site.ce_node p;
      Engine.run engine
    in
    send ();
    Printf.printf "before failure: delivered %d/1\n" !delivered;
    let pops_arr = Backbone.pops (Scenario.backbone sc) in
    Topology.set_duplex_state (Network.topology net) pops_arr.(0)
      pops_arr.(1) false;
    Printf.printf "failing core link pop0 <-> pop1...\n";
    send ();
    Printf.printf "before reconvergence: delivered %d/2 (traffic lost)\n"
      !delivered;
    (match Scenario.mpls sc with
     | Some m ->
       let rounds = Mpls_vpn.reconverge m in
       Printf.printf "reconverged in %d flooding rounds\n" rounds
     | None -> ());
    send ();
    Printf.printf "after reconvergence: delivered %d/3\n" !delivered
  in
  Cmd.v
    (Cmd.info "fail"
       ~doc:"Fail a core link and show loss, reconvergence and recovery.")
    Term.(const run $ pops_arg $ seed_arg)

(* --- provision ----------------------------------------------------------- *)

let provision_cmd =
  let module P = Mvpn_provision in
  (* All numeric inputs are validated at parse time so misuse is always
     cmdliner's usage-error exit (124), never an exception trace. *)
  let int_conv ~what ~lo ?hi () =
    let parse s =
      match int_of_string_opt s with
      | None -> Error (`Msg (Printf.sprintf "invalid integer %S" s))
      | Some v when v < lo || (match hi with Some h -> v > h | None -> false)
        ->
        Error
          (`Msg
             (match hi with
              | Some h -> Printf.sprintf "%s must be in [%d, %d]" what lo h
              | None -> Printf.sprintf "%s must be >= %d" what lo))
      | Some v -> Ok v
    in
    Arg.conv ~docv:"N" (parse, Format.pp_print_int)
  in
  let customers_arg =
    Arg.(value
         & opt (int_conv ~what:"--customers" ~lo:1 ~hi:0x3fff ()) 1000
         & info ["customers"] ~docv:"N" ~doc:"Number of customer VPNs.")
  in
  let dist_arg =
    Arg.(value
         & opt (enum [("pareto", P.Portfolio.Pareto);
                      ("uniform", P.Portfolio.Uniform)])
             P.Portfolio.Pareto
         & info ["sites-dist"] ~docv:"DIST"
           ~doc:"Site-count distribution: pareto (heavy tail) or uniform.")
  in
  let churn_arg =
    Arg.(value & opt (int_conv ~what:"--churn" ~lo:0 ()) 0
         & info ["churn"] ~docv:"K"
           ~doc:"Apply K random site add/remove/SLA-change deltas \
                 incrementally and validate against a from-scratch \
                 compile of the final portfolio.")
  in
  let pops_arg =
    Arg.(value & opt (int_conv ~what:"--pops" ~lo:1 ~hi:64 ()) 12
         & info ["pops"] ~docv:"N" ~doc:"Number of PE POPs (1-64).")
  in
  let rr_arg =
    Arg.(value & flag & info ["rr"]
           ~doc:"Distribute VPNv4 routes through a route reflector at \
                 PE 0 instead of a full iBGP mesh.")
  in
  let json_arg =
    Arg.(value & flag & info ["json"]
           ~doc:"Emit the provisioning report as one JSON object — \
                 portfolio shape, compiled-state metrics, per-PE \
                 linearity table, churn verdict, canonical fingerprint. \
                 Deterministic: equal flags give identical bytes.")
  in
  let run customers dist churn pops seed rr json =
    Telemetry.Registry.reset ();
    let mode =
      if rr then Mvpn_routing.Mpbgp.Route_reflector 0
      else Mvpn_routing.Mpbgp.Full_mesh
    in
    let p = P.Portfolio.generate ~dist ~pe_count:pops ~seed ~customers () in
    let t = P.Compile.compile ~mode p in
    let churn_result =
      if churn = 0 then None
      else begin
        let ops = P.Portfolio.churn p ~seed:(seed + 1) ~ops:churn in
        let st = P.Delta.apply_all t ops in
        let oracle = P.Delta.oracle ~mode p ops in
        Some (st, P.Delta.validate t oracle)
      end
    in
    let m = P.Compile.metrics t in
    let per_pe = P.Compile.per_pe t in
    let fp = P.Compile.fingerprint t in
    if json then begin
      let b = Buffer.create 4096 in
      Printf.bprintf b
        "{\"schema\":%d,\"seed\":%d,\"pe_count\":%d,\"mode\":\"%s\",\
         \"dist\":\"%s\","
        Telemetry.Registry.schema_version seed pops
        (if rr then "route-reflector" else "full-mesh")
        (P.Portfolio.dist_name dist);
      Printf.bprintf b
        "\"portfolio\":{\"customers\":%d,\"sites\":%d,\
         \"overlay_circuits\":%d},"
        customers (P.Portfolio.site_count p) (P.Portfolio.overlay_circuits p);
      Printf.bprintf b
        "\"state\":{\"customers\":%d,\"sites\":%d,\"vrfs\":%d,\
         \"groups\":%d,\"routes\":%d,\"table_entries\":%d,\
         \"shared_entries\":%d,\"lsps\":%d,\"control_messages\":%d,\
         \"rds\":%d,\"rts\":%d,\"bands\":[%s]},"
        m.P.Compile.customers m.P.Compile.sites m.P.Compile.vrfs
        m.P.Compile.groups m.P.Compile.routes m.P.Compile.table_entries
        m.P.Compile.shared_entries m.P.Compile.lsps
        m.P.Compile.control_messages m.P.Compile.rds m.P.Compile.rts
        (String.concat ","
           (Array.to_list (Array.map string_of_int m.P.Compile.bands)));
      Printf.bprintf b "\"per_pe\":[%s],"
        (String.concat ","
           (Array.to_list
              (Array.mapi
                 (fun pe (sites, entries) ->
                    Printf.sprintf
                      "{\"pe\":%d,\"sites\":%d,\"entries\":%d}" pe sites
                      entries)
                 per_pe)));
      (match churn_result with
       | None -> Buffer.add_string b "\"churn\":null,"
       | Some (st, ok) ->
         Printf.bprintf b
           "\"churn\":{\"ops\":%d,\"touched_vrfs\":%d,\"messages\":%d,\
            \"oracle_match\":%b},"
           st.P.Delta.ops st.P.Delta.touched_vrfs st.P.Delta.messages ok);
      Printf.bprintf b "\"fingerprint\":\"%s\"}" fp;
      print_string (Buffer.contents b)
    end
    else begin
      Printf.printf
        "provisioned %d customers (%d sites, %s site distribution) on %d \
         PEs [%s]\n"
        customers m.P.Compile.sites (P.Portfolio.dist_name dist) pops
        (if rr then "route reflector" else "full mesh");
      Printf.printf
        "  peer-model state : %d VRFs, %d routes, %d shared tables, %d \
         LSPs\n"
        m.P.Compile.vrfs m.P.Compile.routes m.P.Compile.groups
        m.P.Compile.lsps;
      Printf.printf
        "  table entries    : %d logical, %d stored (%.1fx dedup)\n"
        m.P.Compile.table_entries m.P.Compile.shared_entries
        (float_of_int m.P.Compile.table_entries
         /. float_of_int (max 1 m.P.Compile.shared_entries));
      Printf.printf "  identifiers      : %d RDs, %d RTs, bands [%s]\n"
        m.P.Compile.rds m.P.Compile.rts
        (String.concat "; "
           (Array.to_list (Array.map string_of_int m.P.Compile.bands)));
      Printf.printf
        "  overlay contrast : %d point-to-point circuits avoided (C1)\n"
        (P.Portfolio.overlay_circuits p);
      Printf.printf "  control messages : %d\n" m.P.Compile.control_messages;
      (match churn_result with
       | None -> ()
       | Some (st, ok) ->
         Printf.printf
           "  churn            : %d deltas touched %d VRFs (%d \
            messages), oracle %s\n"
           st.P.Delta.ops st.P.Delta.touched_vrfs st.P.Delta.messages
           (if ok then "MATCH" else "MISMATCH"));
      Printf.printf "  fingerprint      : %s\n" fp
    end;
    match churn_result with
    | Some (_, false) -> exit 1
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "provision"
       ~doc:"Generate a customer portfolio, compile it to VPN state \
             (VRFs, RTs, QoS bands, LSPs), optionally churn it \
             incrementally, and report the compiled state. Exit 1 if \
             the incremental state diverges from the from-scratch \
             oracle; 124 on command-line errors, per cmdliner.")
    Term.(const run $ customers_arg $ dist_arg $ churn_arg $ pops_arg
          $ seed_arg $ rr_arg $ json_arg)

(* --- plan --------------------------------------------------------------- *)

let plan_cmd =
  let run pops demand_count bandwidth seed =
    let bb = Backbone.build ~pops () in
    let topo = Backbone.topology bb in
    let rng = Mvpn_sim.Rng.create seed in
    let pops_arr = Backbone.pops bb in
    let demands =
      List.init demand_count (fun _ ->
          let src = Mvpn_sim.Rng.int rng pops in
          let dst = (src + 1 + Mvpn_sim.Rng.int rng (pops - 1)) mod pops in
          { Planning.src = pops_arr.(src); dst = pops_arr.(dst);
            bandwidth })
    in
    let report name p =
      Printf.printf
        "%-16s routed %d/%d   max util %.1f%%   hot links %d\n" name
        (Planning.routed p) demand_count
        (Planning.max_utilization p *. 100.0)
        (List.length (Planning.hot_links p));
      match Planning.upgrades_needed p with
      | [] -> ()
      | ups ->
        Printf.printf "  upgrades needed:\n";
        List.iter
          (fun ((l : Topology.link), excess) ->
             Printf.printf "    %s -> %s: +%.1f Mb/s\n"
               (Topology.node_name topo l.Topology.src)
               (Topology.node_name topo l.Topology.dst)
               (excess /. 1e6))
          ups
    in
    Printf.printf "%d demands of %.1f Mb/s over a %d-POP backbone:\n\n"
      demand_count (bandwidth /. 1e6) pops;
    report "shortest-path" (Planning.route_spf topo demands);
    report "capacity-aware" (Planning.route_capacity_aware topo demands)
  in
  let demands_arg =
    Arg.(value & opt int 20 & info ["demands"] ~docv:"N"
           ~doc:"Number of random demands.")
  in
  let bw_arg =
    Arg.(value & opt float 8e6 & info ["bandwidth"] ~docv:"BPS"
           ~doc:"Bandwidth per demand in bits per second.")
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Offline capacity planning: place a demand matrix by SPF and \
             by capacity-aware routing, and show the upgrade bill.")
    Term.(const run $ pops_arg $ demands_arg $ bw_arg $ seed_arg)

let () =
  let info =
    Cmd.info "mvpn" ~version:"1.0.0"
      ~doc:"End-to-end QoS MPLS VPN simulator (ICPP 2000 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [topo_cmd; deploy_cmd; run_cmd; stats_cmd; slo_cmd; chaos_cmd;
           par_cmd; timeline_cmd; soak_cmd; fail_cmd; provision_cmd;
           plan_cmd]))
