bench/e6_end_to_end.ml: Backbone List Mpls_vpn Mvpn_core Mvpn_net Mvpn_qos Mvpn_sim Network Printf Qos_mapping Site Tables Traffic
