lib/core/network.mli: Mvpn_mpls Mvpn_net Mvpn_qos Mvpn_sim Qos_mapping
