(** Bounded time series: a fixed-capacity buffer of (sim_time, value)
    samples per named series, with automatic 2x decimation when full.

    Residency is O(capacity) regardless of run length: when an accepted
    sample would overflow the buffer, the even-indexed half is kept and
    the acceptance stride doubles, so after L decimations the series
    retains every 2^L-th recorded sample. The retained sample set is a
    pure function of the arrival sequence — samplers driven by the same
    schedule retain the same times in every domain, which is what makes
    the cross-domain {!absorb} merge line up sample-for-sample.

    Storage discipline matches {!Counter}: one shared handle, samples
    in domain-local state. {!add} is gated on {!Control.enabled};
    snapshot/restore/absorb are harness operations and unconditional. *)

type t

(** [Sim] series hold deterministic simulation measurements and are
    safe to export byte-identically across shard counts; [Host] series
    hold host-dependent measurements (GC counters, wall time) and are
    excluded from determinism-gated exports such as [mvpn timeline]. *)
type scope = Sim | Host

val default_capacity : int
(** 512 samples. *)

val make : ?capacity:int -> ?scope:scope -> string -> t
(** [capacity] must be even and >= 2 (defaults {!default_capacity});
    [scope] defaults to [Sim]. Prefer {!Registry.series}, which
    registers the handle for export and reset. *)

val name : t -> string

val capacity : t -> int

val scope : t -> scope

val add : t -> time:float -> float -> unit
(** Record one sample in the calling domain's buffer (no-op while
    telemetry is disabled, like every metric write). Sample times are
    expected to be non-decreasing; the decimation stride drops all but
    every 2^level-th arrival once the buffer has filled level times. *)

val length : t -> int
(** Samples currently retained in the calling domain's buffer. *)

val level : t -> int
(** Number of decimations so far (stride = 2^level). *)

val get : t -> int -> float * float
(** [(time, value)] at index [i] in [0 .. length - 1], oldest first.
    @raise Invalid_argument when out of range. *)

val iter : t -> (float -> float -> unit) -> unit
(** [iter t f] applies [f time value] oldest-first. *)

val samples : t -> (float * float) array

val reset : t -> unit
(** Drop all samples and reset the stride (harness operation,
    unconditional). *)

type snapshot

val snapshot : t -> snapshot
(** Capture the calling domain's samples. *)

val restore : t -> snapshot -> unit
(** Replace the calling domain's samples with the captured ones. *)

val absorb : t -> snapshot -> unit
(** Merge the captured samples into the calling domain's buffer: union
    keyed on exact sample time, values summed where times coincide.
    Associative and commutative, so shard partials fold in any order
    into one deterministic series. Inputs with identical time sets
    (samplers on the same schedule) merge within [capacity]; disjoint
    inputs are kept whole (bounded by K * capacity for K partials). *)

val pp : Format.formatter -> t -> unit
