type t = { network : Ipv4.t; length : int }

let mask_of_length len =
  if len = 0 then 0 else 0xFFFF_FFFF lsl (32 - len) land 0xFFFF_FFFF

let make addr len =
  if len < 0 || len > 32 then
    invalid_arg (Printf.sprintf "Prefix.make: length %d out of range" len);
  let canonical = Ipv4.to_int addr land mask_of_length len in
  { network = Ipv4.of_int32_exn canonical; length = len }

let network p = p.network
let length p = p.length

let of_string s =
  match String.index_opt s '/' with
  | None ->
    Result.map (fun a -> make a 32) (Ipv4.of_string s)
  | Some i ->
    let addr_s = String.sub s 0 i in
    let len_s = String.sub s (i + 1) (String.length s - i - 1) in
    begin match Ipv4.of_string addr_s, int_of_string_opt len_s with
    | Ok a, Some len when len >= 0 && len <= 32 -> Ok (make a len)
    | _ -> Error (Printf.sprintf "Prefix.of_string: invalid prefix %S" s)
    end

let of_string_exn s =
  match of_string s with
  | Ok p -> p
  | Error msg -> invalid_arg msg

let to_string p = Printf.sprintf "%s/%d" (Ipv4.to_string p.network) p.length

let pp ppf p = Format.pp_print_string ppf (to_string p)

let compare p q =
  match Ipv4.compare p.network q.network with
  | 0 -> Int.compare p.length q.length
  | c -> c

let equal p q = compare p q = 0

let hash p = Hashtbl.hash (Ipv4.to_int p.network, p.length)

let mem a p = Ipv4.to_int a land mask_of_length p.length = Ipv4.to_int p.network

let subsumes p q = p.length <= q.length && mem q.network p

let overlaps p q = subsumes p q || subsumes q p

let first p = p.network

let size p = 1 lsl (32 - p.length)

let last p = Ipv4.add p.network (size p - 1)

let bit p i =
  if i < 0 || i > 31 then
    invalid_arg (Printf.sprintf "Prefix.bit: index %d out of range" i);
  Ipv4.to_int p.network land (1 lsl (31 - i)) <> 0

let split p =
  if p.length = 32 then None
  else
    let len = p.length + 1 in
    let lo = make p.network len in
    let hi = make (Ipv4.add p.network (1 lsl (32 - len))) len in
    Some (lo, hi)

let subnets p len =
  if len < p.length || len > 32 then
    invalid_arg
      (Printf.sprintf "Prefix.subnets: length %d invalid for %s" len
         (to_string p));
  let count = 1 lsl (len - p.length) in
  if count > 1 lsl 20 then
    invalid_arg "Prefix.subnets: enumeration too large";
  let step = 1 lsl (32 - len) in
  List.init count (fun i -> make (Ipv4.add p.network (i * step)) len)

let nth_host p i =
  if i < 0 || i >= size p then
    invalid_arg
      (Printf.sprintf "Prefix.nth_host: index %d outside %s" i (to_string p));
  Ipv4.add p.network i

let default = make Ipv4.any 0
