(* Fixed-width table rendering for the experiment harness. *)

let heading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt

let row widths cells =
  let padded =
    List.map2
      (fun w c -> if String.length c >= w then c else c ^ String.make (w - String.length c) ' ')
      widths cells
  in
  Printf.printf "%s\n" (String.concat "  " padded)

let rule widths =
  Printf.printf "%s\n"
    (String.concat "  " (List.map (fun w -> String.make w '-') widths))

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let pct v = Printf.sprintf "%.2f%%" (v *. 100.0)
let ms v = Printf.sprintf "%.2f" (v *. 1e3)
let mbps v = Printf.sprintf "%.2f" (v /. 1e6)
