(** Class-based queueing at the customer premises (§5).

    "The customer premises device could use technologies such as CBQ to
    classify traffic and DiffServ/ToS to mark it in a way that the
    service provider network understands the service level
    requirement."

    A CBQ instance is an ordered multifield classifier over traffic
    classes, each with a contracted rate (token bucket), the DSCP it
    marks conforming traffic with, and a policy for excess traffic —
    remark to a worse drop precedence, demote to best effort, or drop.
    Borrowing between classes is modelled by the exceed policy rather
    than a share hierarchy. *)

type exceed_action =
  | Remark of Mvpn_net.Dscp.t  (** e.g. AF31 → AF33 out of profile *)
  | Demote_best_effort
  | Police_drop

type class_cfg = {
  name : string;
  rate_bps : float;
  burst_bytes : float;
  dscp : Mvpn_net.Dscp.t;  (** mark for in-profile traffic *)
  exceed : exceed_action;
  borrow : bool;
      (** CBQ's defining feature: an over-limit class may borrow from
          the parent (interface) allocation while siblings leave it
          idle, instead of triggering [exceed] immediately *)
}

type t

val create :
  ?parent_rate_bps:float ->
  classes:class_cfg array -> rules:int Classifier.rule list -> unit -> t
(** Rule actions are indexes into [classes]. [parent_rate_bps] is the
    shared allocation borrowing classes draw from (default: the sum of
    class rates — i.e. borrowing only redistributes siblings' idle
    share, never exceeds the interface commitment).
    @raise Invalid_argument if a rule's action is out of range. *)

type verdict =
  | Marked of { dscp : Mvpn_net.Dscp.t; class_name : string }
  | Dropped of { class_name : string }

val process : t -> now:float -> Mvpn_net.Packet.t -> verdict
(** Classify, meter and mark one packet, writing the resulting DSCP into
    its inner header. Unmatched packets are marked best effort
    (class name ["default"]). *)

val class_names : t -> string array
