lib/core/overlay.mli: Mvpn_ipsec Mvpn_net Network Site
