lib/routing/ospf.ml: Array Float Hashtbl List Mvpn_net Mvpn_sim Printf
