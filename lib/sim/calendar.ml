(* Calendar queue (Brown 1988): an array of [nbuckets] FIFO-sorted time
   buckets of width [w]. An event with key [k] lives in virtual bucket
   [vb = floor (k / w)], physical bucket [vb land mask]; one "year" is
   [nbuckets * w] of key space. The dequeue cursor [cur_vb] walks
   virtual buckets: a bucket's head is popped when it falls inside the
   cursor's window ([key < (cur_vb + 1) * w]), otherwise the cursor
   advances. A full fruitless year falls back to a direct scan of all
   bucket heads (the queue is sparse relative to the width), which also
   re-seats the cursor.

   Buckets are kept sorted by [(key, seq)] with [seq] a global push
   counter, so equal-key events pop in insertion order — the same FIFO
   tie-break {!Heap} implements, making the two structures
   order-identical and the engine's fingerprints byte-identical under
   either. Pushing a key behind the cursor re-seats the cursor (the
   engine never does this, but the structure stays a correct general
   priority queue for the property tests).

   Sizing: the bucket count doubles above 2 buckets/event and halves
   below 1/2, and on every rebuild the width is re-derived from the
   live key span (~3 expected events per bucket). Between rebuilds a
   running estimate of the mean pop gap triggers a re-width when the
   observed event density drifts >8x from what the width was built
   for — the "density shift" rule that keeps both skewed bursts and
   long-idle phases O(1). *)

(* Cells are fully mutable so the queue can recycle them through a
   free list ([pop_due] clears the value and parks the cell; [push]
   reuses it) and so [rebuild] can relink live cells into the new
   bucket array without copying. The key lives in a one-slot floatarray
   owned by the cell: a mutable float field in a mixed record stores a
   boxed pointer, so recycling a cell would still box a float per push —
   the unboxed slot makes a steady-state push allocation-free. *)
type 'a cell =
  | Nil
  | Cell of {
      k : floatarray;
      mutable seq : int;
      mutable value : 'a;
      mutable next : 'a cell;
    }

type 'a t = {
  mutable buckets : 'a cell array;
  mutable mask : int;  (* Array.length buckets - 1; power of two *)
  mutable w : float;  (* bucket width, > 0 *)
  mutable cur_vb : int;  (* cursor: virtual bucket to scan next *)
  mutable size : int;
  mutable next_seq : int;
  (* Density tracking between rebuilds: mean gap between successive
     pops, compared against the gap the current width was sized for. *)
  gaps : floatarray;  (* [0] last pop key; [1] gap sum — unboxed cells
                         so the per-pop accumulation never boxes *)
  mutable gap_n : int;
  (* Most recent measured mean pop gap; 0.0 until the first
     measurement. Preferred over the live key span when deriving the
     width: a handful of far-future timers can stretch the span by
     orders of magnitude (the classic calendar-queue skew pathology),
     while the pop gap tracks where the dequeue action actually is. *)
  mutable gap_hint : float;
  (* Retired cells, linked by [next], ready for reuse by [push]. Only
     [pop_due] feeds it — that path clears the stored value first, so
     a parked cell retains nothing (the [Heap] Empty-slot rule). *)
  mutable free : 'a cell;
  (* One-slot staging cell for the boxed-key [push] entry point; the
     engine's hot path hands keys over through {!push_at} instead. *)
  scratch : floatarray;
}

let min_buckets = 32
let max_buckets = 1 lsl 20

(* Re-examine width after this many pops (power of two, cheap mask). *)
let rewidth_period = 8192

(* Expected events per bucket the width targets. Purely a performance
   knob: pops always take the global (key, seq) minimum, so bucket
   geometry never changes the pop order. Lower → shorter insert walks,
   more empty buckets to skip on dequeue. *)
let width_factor = 12.0

let create () =
  { buckets = Array.make min_buckets Nil; mask = min_buckets - 1; w = 1.0;
    cur_vb = 0; size = 0; next_seq = 0;
    gaps = (let g = Float.Array.make 2 0.0 in
            Float.Array.set g 0 neg_infinity; g);
    gap_n = 0; gap_hint = 0.0;
    free = Nil; scratch = Float.Array.make 1 0.0 }

let size q = q.size

let is_empty q = q.size = 0

(* Virtual bucket of [key]: floor (key / w), clamped so the float →
   int conversion is always defined. The clamp only engages for keys
   astronomically far from the cursor, where the bucket index is
   meaningless anyway (such events are found by the direct scan). *)
let vb_of w key =
  let p = key /. w in
  if p >= 4.0e18 then max_int / 2
  else if p >= 0.0 then
    (* Truncation is floor for non-negative quotients — the common case
       (simulated time), minus [Float.floor]'s C call. *)
    int_of_float p
  else if p <= -4.0e18 then min_int / 2
  else int_of_float (Float.floor p)

(* Link an existing cell into bucket [idx], sorted by (key, seq).
   [seq] grows monotonically, so walking while [strictly less than the
   new cell] appends equal keys in insertion order. Top-level recursion
   (not an inner closure) so insertion allocates nothing; keys travel
   as floatarray loads, never as float arguments (which would box). *)
let rec ins_walk prev cell ck seq =
  match prev with
  | Nil -> assert false
  | Cell p ->
    (match p.next with
     | Cell n
       when (let nk = Float.Array.unsafe_get n.k 0
             and key = Float.Array.unsafe_get ck 0 in
             nk < key || (nk = key && n.seq < seq)) ->
       ins_walk p.next cell ck seq
     | next ->
       (match cell with
        | Cell c -> c.next <- next
        | Nil -> assert false);
       p.next <- cell)

let link_sorted q idx cell seq =
  let ck = match cell with Cell c -> c.k | Nil -> assert false in
  match q.buckets.(idx) with
  | Cell h
    when (let hk = Float.Array.unsafe_get h.k 0
          and key = Float.Array.unsafe_get ck 0 in
          hk < key || (hk = key && h.seq < seq)) ->
    ins_walk q.buckets.(idx) cell ck seq
  | head ->
    (match cell with
     | Cell c -> c.next <- head
     | Nil -> assert false);
    q.buckets.(idx) <- cell

(* A cell carrying (key, seq, value): recycled from the free list when
   one is parked there, freshly allocated otherwise. The key arrives
   through the caller's staging cell and is copied slot-to-slot. *)
let alloc_cell q kcell seq value =
  match q.free with
  | Cell f as cell ->
    q.free <- f.next;
    Float.Array.unsafe_set f.k 0 (Float.Array.unsafe_get kcell 0);
    f.seq <- seq;
    f.value <- value;
    f.next <- Nil;
    cell
  | Nil ->
    Cell { k = Float.Array.make 1 (Float.Array.get kcell 0);
           seq; value; next = Nil }

let insert_sorted q idx kcell seq value =
  link_sorted q idx (alloc_cell q kcell seq value) seq

(* Rebuild with [nbuckets] buckets, width derived from the live key
   span (targeting ~[width_factor] events per bucket so dequeue scans stay short).
   O(size); called on threshold crossings and density drift, both
   amortized. *)
let rebuild q nbuckets =
  let old = q.buckets in
  let n = max min_buckets (min max_buckets nbuckets) in
  (* Live key span for the new width. *)
  let kmin = ref infinity and kmax = ref neg_infinity in
  Array.iter
    (fun head ->
       let rec go = function
         | Nil -> ()
         | Cell c ->
           let ck = Float.Array.get c.k 0 in
           if ck < !kmin then kmin := ck;
           if ck > !kmax then kmax := ck;
           go c.next
       in
       go head)
    old;
  let span = !kmax -. !kmin in
  let w =
    if q.size = 0 then q.w
    else begin
      (* ~[width_factor] expected events per bucket: from the measured pop gap when
         one exists, else from the live span (start-up, before any
         pops). Span can be wildly skewed by far-future outliers; the
         gap cannot. *)
      let ideal =
        if q.gap_hint > 0.0 then width_factor *. q.gap_hint
        else if span > 0.0 then width_factor *. span /. float_of_int q.size
        else q.w
      in
      (* Keep floor (key / w) far inside int range. *)
      let lo = Float.max 1e-300 (Float.abs !kmax *. 1e-15) in
      Float.max ideal lo
    end
  in
  q.buckets <- Array.make n Nil;
  q.mask <- n - 1;
  q.w <- w;
  Array.iter
    (fun head ->
       let rec go cell =
         match cell with
         | Nil -> ()
         | Cell c ->
           let next = c.next in
           c.next <- Nil;
           link_sorted q (vb_of w (Float.Array.get c.k 0) land q.mask) cell
             c.seq;
           go next
       in
       go head)
    old;
  (* Re-seat the cursor at the earliest live bucket. *)
  if q.size > 0 then q.cur_vb <- vb_of w !kmin;
  Float.Array.set q.gaps 1 0.0;
  q.gap_n <- 0

(* Push with the key handed over through a one-slot floatarray: the
   engine's schedule path writes its cell and calls this, so the key
   never crosses a call boundary as a float argument (each of which
   would allocate a box). [vb_of] is open-coded for the same reason. *)
let push_at q kcell value =
  let key = Float.Array.get kcell 0 in
  (* key -. key = 0.0 <=> finite; keeps Float.is_finite's call (and
     its argument box) out of the per-event path. *)
  if not (key -. key = 0.0) then
    invalid_arg "Calendar.push: key not finite";
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  let p = key /. q.w in
  let vb =
    if p >= 4.0e18 then max_int / 2
    else if p >= 0.0 then int_of_float p
    else if p <= -4.0e18 then min_int / 2
    else int_of_float (Float.floor p)
  in
  if q.size = 0 || vb < q.cur_vb then q.cur_vb <- vb;
  insert_sorted q (vb land q.mask) kcell seq value;
  q.size <- q.size + 1;
  if q.size > 2 * (q.mask + 1) && q.mask + 1 < max_buckets then
    rebuild q (2 * (q.mask + 1))

let push q key value =
  Float.Array.set q.scratch 0 key;
  push_at q q.scratch value

(* Fallback when a whole year's scan found nothing due: the population
   is sparse relative to the width, so take the global minimum across
   all bucket heads (each head is its bucket's minimum) and re-seat the
   cursor there. Cold path; runs at most once per pop. *)
let direct_min q =
  let best = ref Nil in
  Array.iter
    (fun head ->
       match head, !best with
       | Nil, _ -> ()
       | Cell c, Cell b ->
         let ck = Float.Array.unsafe_get c.k 0
         and bk = Float.Array.unsafe_get b.k 0 in
         if ck < bk || (ck = bk && c.seq < b.seq) then best := head
       | Cell _, Nil -> best := head)
    q.buckets;
  (match !best with
   | Cell b -> q.cur_vb <- vb_of q.w (Float.Array.get b.k 0)
   | Nil -> assert false);
  !best

(* Advance the cursor to the virtual bucket holding the global minimum,
   returning that minimum cell (still linked, never copied — the
   returned value is the bucket head itself). O(1) expected: the cursor
   only moves over buckets with no due event, and each position is
   visited once per year. *)
let rec scan_min q vb remaining =
  if remaining = 0 then direct_min q
  else
    match q.buckets.(vb land q.mask) with
    | Cell c
      when Float.Array.unsafe_get c.k 0 < float_of_int (vb + 1) *. q.w ->
      q.cur_vb <- vb;
      q.buckets.(vb land q.mask)
    | _ -> scan_min q (vb + 1) (remaining - 1)

let find_min q =
  if q.size = 0 then Nil else scan_min q q.cur_vb (q.mask + 1)

let peek q =
  match find_min q with
  | Nil -> None
  | Cell c -> Some (Float.Array.get c.k 0, c.value)

let pop q =
  match find_min q with
  | Nil -> None
  | Cell c ->
    let ckey = Float.Array.get c.k 0 in
    (* find_min re-seated the cursor, so the minimum is the head of the
       cursor's physical bucket. *)
    let idx = q.cur_vb land q.mask in
    (match q.buckets.(idx) with
     | Cell h -> q.buckets.(idx) <- h.next
     | Nil -> assert false);
    q.size <- q.size - 1;
    (* Density drift check: compare the mean inter-pop gap against the
       ~w/width_factor gap the current width was derived for; rebuild on >8x
       drift in either direction. *)
    let last = Float.Array.get q.gaps 0 in
    if last > neg_infinity then begin
      Float.Array.set q.gaps 1 (Float.Array.get q.gaps 1 +. (ckey -. last));
      q.gap_n <- q.gap_n + 1;
      if q.gap_n land (rewidth_period - 1) = 0
         && Float.Array.get q.gaps 1 > 0.0 then begin
        let mean_gap = Float.Array.get q.gaps 1 /. float_of_int q.gap_n in
        q.gap_hint <- mean_gap;
        let built_for = q.w /. width_factor in
        if mean_gap > 8.0 *. built_for || mean_gap < built_for /. 8.0 then
          rebuild q (q.mask + 1)
        else begin
          Float.Array.set q.gaps 1 0.0;
          q.gap_n <- 0
        end
      end
    end;
    Float.Array.set q.gaps 0 ckey;
    if q.size < (q.mask + 1) / 2 && q.mask + 1 > min_buckets then
      rebuild q ((q.mask + 1) / 2);
    Some (ckey, c.value)

(* Allocation-free pop for the engine's run loop (see {!Heap.pop_due}):
   sentinel return instead of an option, key through a floatarray cell,
   and the vacated cell parked on the free list with its value cleared
   to [default] so nothing is retained. *)
let pop_due q ~bound ~strict ~default ~key_out =
  match find_min q with
  | Nil -> default
  | Cell c ->
    let ckey = Float.Array.unsafe_get c.k 0 in
    if if strict then ckey < bound else ckey <= bound then begin
      (* find_min re-seated the cursor, so the minimum is the head of
         the cursor's physical bucket — the very cell [c]. *)
      let idx = q.cur_vb land q.mask in
      let cell = q.buckets.(idx) in
      q.buckets.(idx) <- c.next;
      q.size <- q.size - 1;
      Float.Array.set key_out 0 ckey;
      let value = c.value in
      c.value <- default;
      c.next <- q.free;
      q.free <- cell;
      (* Density drift check, as in [pop]. *)
      let last = Float.Array.get q.gaps 0 in
      if last > neg_infinity then begin
        Float.Array.set q.gaps 1 (Float.Array.get q.gaps 1 +. (ckey -. last));
        q.gap_n <- q.gap_n + 1;
        if q.gap_n land (rewidth_period - 1) = 0
           && Float.Array.get q.gaps 1 > 0.0 then begin
          let mean_gap = Float.Array.get q.gaps 1 /. float_of_int q.gap_n in
          q.gap_hint <- mean_gap;
          let built_for = q.w /. width_factor in
          if mean_gap > 8.0 *. built_for || mean_gap < built_for /. 8.0 then
            rebuild q (q.mask + 1)
          else begin
            Float.Array.set q.gaps 1 0.0;
            q.gap_n <- 0
          end
        end
      end;
      Float.Array.set q.gaps 0 ckey;
      if q.size < (q.mask + 1) / 2 && q.mask + 1 > min_buckets then
        rebuild q ((q.mask + 1) / 2);
      value
    end
    else default

let clear q =
  q.buckets <- Array.make min_buckets Nil;
  q.mask <- min_buckets - 1;
  q.w <- 1.0;
  q.cur_vb <- 0;
  q.size <- 0;
  q.next_seq <- 0;
  Float.Array.set q.gaps 0 neg_infinity;
  Float.Array.set q.gaps 1 0.0;
  q.gap_n <- 0;
  q.free <- Nil

let bucket_count q = q.mask + 1

let width q = q.w
