(** The incremental provisioning engine.

    A running {!Compile.t} absorbs portfolio churn one op at a time: a
    site add joins membership, exports one route, propagates one BGP
    journal entry and splices one id into the affected shared tables; a
    removal is the exact inverse; an SLA change flips one customer's
    band. Nothing is recompiled — the touched-VRF count per op is the
    honest measure of blast radius, and E19 gates single-op convergence
    at >= 10x faster than a from-scratch compile of the same design.

    Because every resource allocation ({!Service.Pool}, labels,
    prefixes) is a pure function of stable ids, the state after any
    interleaving of deltas is content-identical to a fresh
    {!Compile.compile} of the final portfolio — {!validate} checks that
    with the canonical fingerprint, and a qcheck property pins it over
    random interleavings. *)

type stats = {
  ops : int;
  touched_vrfs : int;  (** summed blast radius *)
  messages : int;  (** control messages the deltas cost *)
}

val apply : Compile.t -> Portfolio.op -> int
(** Apply one churn op; returns the number of VRFs touched. Also bumps
    the [provision.delta.ops] / [provision.delta.touched_vrfs]
    telemetry counters. *)

val apply_all : Compile.t -> Portfolio.op list -> stats

val oracle : ?mode:Mvpn_routing.Mpbgp.session_mode ->
  Portfolio.t -> Portfolio.op list -> Compile.t
(** The from-scratch referee: replay the ops on the portfolio purely,
    then bulk-compile the result. *)

val validate : Compile.t -> Compile.t -> bool
(** Fingerprint equality against the oracle. *)
