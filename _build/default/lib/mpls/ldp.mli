(** Label distribution protocol (downstream-unsolicited, liberal
    retention — simplified).

    For each prefix FEC, every LSR allocates a label from its own space
    and advertises the binding to all neighbors; each LSR then splices
    its incoming label to the label its IGP next hop advertised,
    producing a hop-by-hop LSP tree rooted at the FEC's egress router.
    With penultimate-hop popping the egress advertises implicit null, so
    its upstream neighbor pops instead of swapping.

    This is the "label distribution protocol" path of §4: the discovery
    and reachability machinery piggybacks on LDP/OSPF/BGP, and the data
    traffic rides LSPs created to connect the members. *)

type t

val distribute :
  ?php:bool ->
  ?usable:(Mvpn_sim.Topology.link -> bool) ->
  Mvpn_sim.Topology.t -> Plane.t ->
  fecs:(Mvpn_net.Prefix.t * int) list -> t
(** [distribute topo plane ~fecs] allocates labels and installs LFIB and
    FTN entries on every node for every (prefix, egress-node) FEC.
    [php] (default [true]) enables penultimate-hop popping; [usable]
    (default: link is up) restricts which links LSPs may cross — the
    per-provider label-distribution boundary. Unreachable routers simply
    get no entry for that FEC.
    @raise Invalid_argument on an unknown egress node. *)

val refresh : t -> unit
(** Recompute next hops against the current topology (after a failure
    and IGP reconvergence), keeping existing label bindings, and
    reinstall entries. Routers that lost reachability to a FEC's egress
    have their entries removed. *)

val local_binding : t -> router:int -> Mvpn_net.Prefix.t -> int option
(** The label [router] allocated for a FEC; [implicit_null] at the
    egress when PHP is on. *)

val ingress_label : t -> router:int -> Mvpn_net.Prefix.t -> int option
(** The label an ingress at [router] would push for the FEC —
    [None] when unreachable or when the next hop is the PHP egress
    (forward unlabelled). *)

val messages : t -> int
(** Label-mapping advertisements sent (bindings × neighbors), cumulative
    across {!distribute} and {!refresh}. *)

val fec_count : t -> int
