(** Simulated packets.

    A packet carries an (inner) IP header, optionally an outer IP header
    added by tunnel encapsulation (IPSec tunnel mode or GRE, §2.3), and
    optionally an MPLS shim stack pushed by the ingress LSR (§3). Header
    fields are mutable because routers rewrite them in place as the packet
    traverses the simulated backbone — exactly the per-hop mutations the
    architecture relies on (TTL decrement, DSCP remark, label swap).

    The packet also carries immutable provenance (flow identity, VPN id,
    sequence number, creation time) used by the measurement plane; data
    forwarding must never consult it, and the isolation tests check that
    delivery is explained by headers and labels alone. *)

(** One MPLS shim entry. [exp] is the 3-bit class-of-service field the
    provider edge writes from the DSCP (§5); [ttl] is the label TTL. *)
type shim = { label : int; mutable exp : int; mutable ttl : int }

type header = {
  mutable src : Ipv4.t;
  mutable dst : Ipv4.t;
  mutable proto : Flow.proto;
  mutable src_port : int;
  mutable dst_port : int;
  mutable dscp : Dscp.t;
  mutable ttl : int;
}

type t = {
  uid : int;  (** unique per packet, for tracing and replay detection *)
  flow : Flow.t;  (** original flow identity (measurement plane only) *)
  vpn : int option;  (** originating VPN id (measurement plane only) *)
  seq : int;  (** per-flow sequence number (loss/reorder measurement) *)
  created_at : float;  (** simulation time of creation (delay measurement) *)
  mutable size : int;  (** total on-wire bytes, including encapsulation *)
  inner : header;
  mutable encrypted : bool;
      (** when [true] the inner header is unreadable (ESP), so per-hop
          classification can only use the outer header — the paper's
          "erasing any hope one may have to control QoS" problem *)
  mutable outer : header option;
  mutable labels : shim list;  (** top of stack first *)
  mutable encap_bytes : int;  (** wire overhead of the current tunnel *)
}

val default_ttl : int
(** Initial IP TTL (64). *)

val make :
  ?vpn:int -> ?seq:int -> ?dscp:Dscp.t -> ?size:int -> now:float ->
  Flow.t -> t
(** [make ~now flow] builds a fresh unencapsulated packet for [flow].
    [size] defaults to 512 bytes, [dscp] to best effort. Assigns a fresh
    [uid] from a global counter. *)

val header_of_flow : ?dscp:Dscp.t -> Flow.t -> header
(** A fresh header populated from a flow's 5-tuple. *)

val copy : t -> t
(** A replication copy: fresh uid, deep-copied headers and label stack,
    same provenance (flow, vpn, seq, creation time). The ingress-
    replication primitive for group delivery. *)

val visible_header : t -> header
(** The header a router may inspect: the outer header when the packet is
    encapsulated, the inner header otherwise. *)

val visible_dscp : t -> Dscp.t
(** DSCP of {!visible_header} — what a DiffServ classifier sees. When the
    packet is labelled, forwarding hops should use {!top_exp} instead. *)

val classifiable_flow : t -> Flow.t option
(** The 5-tuple a multifield classifier can extract: [None] when the
    packet is encrypted and only the (address-only) outer header shows. *)

val top_label : t -> shim option
(** Top of the label stack, if any. *)

val top_exp : t -> int option
(** EXP bits of the top label, if the packet is labelled. *)

val push_label : t -> label:int -> exp:int -> ttl:int -> unit
(** Push a shim entry (4 bytes of wire size). *)

val pop_label : t -> shim option
(** Pop the top shim entry (reclaims 4 bytes); [None] on empty stack. *)

val swap_label : t -> label:int -> unit
(** Rewrite the top label in place, decrementing its TTL.
    @raise Invalid_argument on an unlabelled packet. *)

val encapsulate :
  t -> src:Ipv4.t -> dst:Ipv4.t -> proto:Flow.proto -> overhead:int ->
  copy_tos:bool -> unit
(** [encapsulate p ~src ~dst ~proto ~overhead ~copy_tos] wraps [p] in an
    outer header between tunnel endpoints, growing the wire size by
    [overhead]. When [copy_tos] the inner DSCP is copied to the outer
    header; otherwise the outer header carries best effort and the
    service class is invisible (claim C4).
    @raise Invalid_argument if the packet is already encapsulated. *)

val decapsulate : t -> unit
(** Remove the outer header and its size overhead, restoring the inner
    header as visible.
    @raise Invalid_argument if the packet has no outer header. *)

val pp : Format.formatter -> t -> unit

val reset_uid_counter : unit -> unit
(** Reset the global uid counter (test isolation only). *)
