lib/core/vrf.ml: List Mvpn_net Mvpn_routing Site
