lib/frelay/frame.mli: Format
