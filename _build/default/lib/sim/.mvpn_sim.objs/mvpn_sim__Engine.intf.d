lib/sim/engine.mli:
